// Package txn implements transaction bookkeeping: identities, lifecycle
// states, and the per-transaction page/record sets that the recovery
// schemes consult at EOT, abort and crash recovery time.
//
// The manager also issues the global monotonic timestamps the twin parity
// headers carry (Section 4.2): every transaction id doubles as an
// ordering point, and additional timestamps can be drawn for individual
// parity writes so that later writes always compare higher in the
// Current_Parity algorithm (Figure 7).
package txn

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/page"
)

// Status is a transaction lifecycle state.
type Status int

// Transaction states.
const (
	Active Status = iota
	Committed
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Txn is one transaction's volatile bookkeeping.
type Txn struct {
	ID     page.TxID
	Status Status

	// Modified is the set of pages this transaction has modified and the
	// modification kind bookkeeping the engine needs at EOT:
	// true = the page currently has uncommitted changes in the buffer or
	// on disk attributable to this transaction.
	Modified map[page.PageID]struct{}
	// StolenNoLog lists pages written back without UNDO logging, in
	// steal order; the last element is the current head of the log chain
	// (Section 4.3).  A page may appear once — a re-steal does not extend
	// the chain.
	StolenNoLog []page.PageID
	// LoggedUndo is the set of pages (page granularity) or the count of
	// record images (record granularity) for which before-images were
	// logged.
	LoggedUndo map[page.PageID]struct{}
	// ChainHeadLogged reports whether the transaction's chain-head log
	// record has been written.
	ChainHeadLogged bool
	// ModifiedRecords tracks record-granularity before-images already
	// logged, so each (page, slot) is logged at most once per
	// transaction.
	ModifiedRecords map[page.RecordID]struct{}
}

// InChain reports whether page p is already part of the transaction's
// no-UNDO-logging chain.
func (t *Txn) InChain(p page.PageID) bool {
	for _, q := range t.StolenNoLog {
		if q == p {
			return true
		}
	}
	return false
}

// ChainHead returns the most recently chained page, or page.InvalidPage
// if the chain is empty.
func (t *Txn) ChainHead() page.PageID {
	if len(t.StolenNoLog) == 0 {
		return page.InvalidPage
	}
	return t.StolenNoLog[len(t.StolenNoLog)-1]
}

// Manager allocates transaction ids and timestamps and tracks active
// transactions.  It is safe for concurrent use.
type Manager struct {
	mu     sync.Mutex
	nextID page.TxID
	nextTS page.Timestamp
	active map[page.TxID]*Txn
	// outcomes remembers finished transactions' outcomes for the
	// lifetime of the process; crash recovery uses the log instead.
	started   int64
	committed int64
	aborted   int64
}

// NewManager creates a manager.  IDs start at 1 (page.InvalidTx is 0).
func NewManager() *Manager {
	return &Manager{nextID: 1, nextTS: 1, active: make(map[page.TxID]*Txn)}
}

// Begin creates a new active transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{
		ID:              m.nextID,
		Status:          Active,
		Modified:        make(map[page.PageID]struct{}),
		LoggedUndo:      make(map[page.PageID]struct{}),
		ModifiedRecords: make(map[page.RecordID]struct{}),
	}
	m.nextID++
	m.started++
	m.active[t.ID] = t
	return t
}

// NextTimestamp draws a fresh globally monotonic timestamp for a parity
// page header.
func (m *Manager) NextTimestamp() page.Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.nextTS
	m.nextTS++
	return ts
}

// Get returns the active transaction with the given id, or nil.
func (m *Manager) Get(id page.TxID) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active[id]
}

// Finish moves the transaction out of the active table with the given
// terminal status.
func (m *Manager) Finish(id page.TxID, status Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.active[id]
	if !ok {
		return
	}
	t.Status = status
	delete(m.active, id)
	if status == Committed {
		m.committed++
	} else {
		m.aborted++
	}
}

// Active returns the ids of all active transactions in ascending order.
func (m *Manager) Active() []page.TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]page.TxID, 0, len(m.active))
	for id := range m.active {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActiveCount returns the number of active transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Counts returns (started, committed, aborted) totals since creation.
func (m *Manager) Counts() (started, committed, aborted int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started, m.committed, m.aborted
}

// Reset drops all volatile transaction state but preserves the id and
// timestamp counters — after a crash, new transactions and parity writes
// must still sort after every pre-crash one.
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active = make(map[page.TxID]*Txn)
}
