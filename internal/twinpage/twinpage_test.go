package twinpage

import (
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/page"
	"repro/internal/xorparity"
)

func newTwinArray(t *testing.T) *diskarray.Array {
	t.Helper()
	a, err := diskarray.New(diskarray.Config{
		Kind: diskarray.RAID5Twin, DataDisks: 3, NumPages: 24, PageSize: page.MinSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFormattedStateTwinZeroCurrent(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	for g := 0; g < a.NumGroups(); g++ {
		if m.Current(page.GroupID(g)) != 0 || m.Obsolete(page.GroupID(g)) != 1 {
			t.Fatalf("group %d not formatted with twin 0 current", g)
		}
	}
}

func TestWriteWorkingTargetsObsoleteTwin(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	parity := page.NewBuf(a.PageSize())
	parity[0] = 0xAB
	twin, err := m.WriteWorking(2, parity, 5, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if twin != 1 {
		t.Fatalf("working parity written to twin %d, want the obsolete twin 1", twin)
	}
	meta, err := a.PeekParityMeta(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != disk.StateWorking || meta.Timestamp != 100 || meta.Txn != 5 {
		t.Fatalf("working twin header = %+v", meta)
	}
	// The bitmap still points at twin 0 until a commit promotes twin 1.
	if m.Current(2) != 0 {
		t.Fatalf("current twin changed before commit")
	}
	m.Promote(2, twin)
	if m.Current(2) != 1 || m.Obsolete(2) != 0 {
		t.Fatalf("promotion did not flip the bitmap")
	}
}

func TestInvalidate(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	parity := page.NewBuf(a.PageSize())
	twin, err := m.WriteWorking(0, parity, 9, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Invalidate(0, twin); err != nil {
		t.Fatal(err)
	}
	meta, err := a.PeekParityMeta(0, twin)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != disk.StateInvalid || meta.Timestamp != 0 {
		t.Fatalf("invalidated twin header = %+v", meta)
	}
	if m.Current(0) != 0 {
		t.Fatalf("current twin must remain 0 after an abort")
	}
}

// TestCurrentParityFigure7 exercises the timestamp comparison of the
// Current_Parity algorithm.
func TestCurrentParityFigure7(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	buf := page.NewBuf(a.PageSize())

	// Freshly formatted: twin 0 (committed, ts 0) wins the tie.
	twin, err := m.CurrentParityFromDisk(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if twin != 0 {
		t.Fatalf("formatted group: current twin %d, want 0", twin)
	}

	// Commit a parity on twin 1 with a larger timestamp: twin 1 wins.
	if err := a.WriteParity(0, 1, buf, disk.Meta{State: disk.StateCommitted, Timestamp: 7, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if twin, err = m.CurrentParityFromDisk(0, nil); err != nil || twin != 1 {
		t.Fatalf("twin = %d err = %v, want twin 1", twin, err)
	}

	// An even larger timestamp back on twin 0 reclaims it.
	if err := a.WriteParity(0, 0, buf, disk.Meta{State: disk.StateCommitted, Timestamp: 9, Txn: 2}); err != nil {
		t.Fatal(err)
	}
	if twin, err = m.CurrentParityFromDisk(0, nil); err != nil || twin != 0 {
		t.Fatalf("twin = %d err = %v, want twin 0", twin, err)
	}
}

// TestTwinStateDiagramFigure8 exercises the four states of Figure 8 as
// seen by the crash-time scan: committed wins over working-with-aborted
// writer; working-with-committed writer wins over old committed.
func TestTwinStateDiagramFigure8(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	buf := page.NewBuf(a.PageSize())

	// Group 1: twin 0 committed(ts 5); twin 1 working by txn 3 (ts 8).
	if err := a.WriteParity(1, 0, buf, disk.Meta{State: disk.StateCommitted, Timestamp: 5, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteParity(1, 1, buf, disk.Meta{State: disk.StateWorking, Timestamp: 8, Txn: 3}); err != nil {
		t.Fatal(err)
	}

	committed := func(tx page.TxID) bool { return tx == 3 }
	notCommitted := func(tx page.TxID) bool { return false }

	// Writer committed: the working twin is the real current parity.
	if twin, err := m.CurrentParityFromDisk(1, committed); err != nil || twin != 1 {
		t.Fatalf("twin = %d err = %v, want working twin 1 (writer committed)", twin, err)
	}
	// Writer lost: the committed twin stays current.
	if twin, err := m.CurrentParityFromDisk(1, notCommitted); err != nil || twin != 0 {
		t.Fatalf("twin = %d err = %v, want committed twin 0 (writer aborted)", twin, err)
	}

	// After undo, the loser's twin is invalidated; the scan must then
	// pick twin 0 regardless of outcomes.
	if err := m.Invalidate(1, 1); err != nil {
		t.Fatal(err)
	}
	if twin, err := m.CurrentParityFromDisk(1, nil); err != nil || twin != 0 {
		t.Fatalf("twin = %d err = %v, want 0 after invalidation", twin, err)
	}
}

func TestNoValidTwinIsAnError(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	buf := page.NewBuf(a.PageSize())
	for twin := 0; twin < 2; twin++ {
		if err := a.WriteParity(3, twin, buf, disk.Meta{State: disk.StateInvalid}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.CurrentParityFromDisk(3, nil); err == nil || !strings.Contains(err.Error(), "no valid parity twin") {
		t.Fatalf("err = %v, want no-valid-twin error", err)
	}
}

func TestRebuildBitmap(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	buf := page.NewBuf(a.PageSize())
	// Scatter some commits: odd groups get twin 1 current.
	for g := 0; g < a.NumGroups(); g++ {
		if g%2 == 1 {
			if err := a.WriteParity(page.GroupID(g), 1, buf, disk.Meta{State: disk.StateCommitted, Timestamp: 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Reset() // crash wipes the bitmap
	if err := m.RebuildBitmap(nil); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < a.NumGroups(); g++ {
		want := g % 2
		if got := m.Current(page.GroupID(g)); got != want {
			t.Fatalf("group %d rebuilt to twin %d, want %d", g, got, want)
		}
	}
}

// TestUndoViaTwinParityFigure6 ties the manager to the XOR identity of
// Figure 6: after a no-logging steal, the before-image is recoverable
// from the two twins and the new data.
func TestUndoViaTwinParityFigure6(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	ps := a.PageSize()

	// Establish a non-trivial committed state for group 0.
	pages := a.GroupPages(0)
	for i, p := range pages {
		b := page.NewBuf(ps)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		if err := a.WriteData(p, b, disk.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.RecomputeParity(0, 0, disk.Meta{State: disk.StateCommitted, Timestamp: 1}); err != nil {
		t.Fatal(err)
	}

	// Transaction 7 overwrites the middle page without UNDO logging.
	victim := pages[1]
	oldData, _, err := a.ReadData(victim)
	if err != nil {
		t.Fatal(err)
	}
	newData := page.NewBuf(ps)
	for j := range newData {
		newData[j] = byte(255 - j)
	}
	committedParity, _, err := a.ReadParity(0, m.Current(0))
	if err != nil {
		t.Fatal(err)
	}
	working := xorparity.SmallWrite(committedParity, oldData, newData)
	if _, err := m.WriteWorking(0, working, 7, 10, victim); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteData(victim, newData, disk.Meta{Txn: 7}); err != nil {
		t.Fatal(err)
	}

	// Figure 6: D_old = (P ⊕ P') ⊕ D_new.
	p0, _, err := a.ReadParity(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := a.ReadParity(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, _, err := a.ReadData(victim)
	if err != nil {
		t.Fatal(err)
	}
	recovered := xorparity.UndoTwin(p0, p1, onDisk)
	if !page.Buf(recovered).Equal(oldData) {
		t.Fatalf("twin undo did not recover the before-image")
	}
}

func TestRewriteWorking(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	parity := page.NewBuf(a.PageSize())
	twin, err := m.WriteWorking(4, parity, 3, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	parity[0] = 0xEE
	if err := m.RewriteWorking(4, twin, parity, 3, 11, 16); err != nil {
		t.Fatal(err)
	}
	meta, err := a.PeekParityMeta(4, twin)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != disk.StateWorking || meta.Timestamp != 11 || meta.DirtyPage != 16 {
		t.Fatalf("rewritten header = %+v", meta)
	}
	got, err := a.PeekParity(4, twin)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE {
		t.Fatalf("rewrite did not update contents")
	}
}

func TestPromotePanicsOnBadTwin(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	defer func() {
		if recover() == nil {
			t.Fatalf("Promote(2) must panic")
		}
	}()
	m.Promote(0, 2)
}

func TestManagerErrorsOnFailedDisk(t *testing.T) {
	a := newTwinArray(t)
	m := New(a)
	loc := a.ParityLoc(0, 1)
	a.Disk(loc.Disk).Fail()
	if _, err := m.WriteWorking(0, page.NewBuf(a.PageSize()), 1, 1, 0); err == nil {
		t.Fatalf("WriteWorking to a failed disk must error")
	}
	if _, err := m.CurrentParityFromDisk(0, nil); err == nil {
		t.Fatalf("scan over a failed disk must error")
	}
	if err := m.RebuildBitmap(nil); err == nil {
		t.Fatalf("rebuild over a failed disk must error")
	}
}

func TestNewPanicsOnSingleParity(t *testing.T) {
	arr, err := diskarray.New(diskarray.Config{
		Kind: diskarray.RAID5, DataDisks: 3, NumPages: 12, PageSize: page.MinSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("New on a single-parity array must panic")
		}
	}()
	New(arr)
}
