// Package twinpage manages the paper's twin parity pages (Section 4.2,
// Figures 7 and 8).
//
// Every parity group of a twinned array has two parity pages on two
// different disks.  At any moment one of them is the *current* (valid)
// parity and the other is *obsolete*.  When a data page modified by an
// active transaction is written back without UNDO logging, the new parity
// is written over the obsolete twin with the transaction's timestamp in
// its header, putting it in the *working* state; if the transaction
// commits, that twin becomes the current parity (a pure bookkeeping flip:
// no I/O), and if it aborts, the twin's timestamp is reset, putting it in
// the *invalid* state while the other twin remains current.
//
// In normal operation the identity of the current twin for each group is
// kept in a main-memory bitmap.  The bitmap is lost in a crash; it is
// reconstructed by scanning the parity page headers — the Current_Parity
// algorithm of Figure 7 picks the twin with the larger timestamp — with
// the refinement crash recovery needs: a twin left in the working state
// counts only if its writing transaction is known (from the log) to have
// committed.
package twinpage

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/page"
)

// Manager tracks the current twin of every parity group.  The engine
// serializes access to it along with the rest of its volatile state.
type Manager struct {
	arr *diskarray.Array
	// current[g] is the index (0 or 1) of the current parity twin of
	// group g.  Volatile: Reset models its loss in a crash.
	current []uint8
}

// New creates a manager for a twinned array with twin 0 current for every
// group (the formatted state).
func New(arr *diskarray.Array) *Manager {
	if !arr.Twinned() {
		panic("twinpage: array has no twin parity pages")
	}
	return &Manager{arr: arr, current: make([]uint8, arr.NumGroups())}
}

// Current returns the current twin index for group g according to the
// in-memory bitmap.
func (m *Manager) Current(g page.GroupID) int { return int(m.current[g]) }

// Obsolete returns the non-current twin index for group g.
func (m *Manager) Obsolete(g page.GroupID) int { return 1 - int(m.current[g]) }

// Promote flips the bitmap so that the given twin becomes current (the
// commit transition of Figure 8: working → committed, and the old
// current becomes obsolete).  No I/O is performed; the on-disk state
// catches up lazily, which is safe because the log determines every
// transaction's outcome after a crash.
func (m *Manager) Promote(g page.GroupID, twin int) {
	if twin != 0 && twin != 1 {
		panic(fmt.Sprintf("twinpage: bad twin %d", twin))
	}
	m.current[g] = uint8(twin)
}

// WriteWorking writes the new parity image into group g's obsolete twin,
// stamping it with the writing transaction, timestamp and the covered
// data page (Figure 8's transition into the working state).  It returns
// the twin index written.
func (m *Manager) WriteWorking(g page.GroupID, parity page.Buf, tx page.TxID, ts page.Timestamp, dirtyPage page.PageID) (int, error) {
	twin := m.Obsolete(g)
	meta := disk.Meta{State: disk.StateWorking, Timestamp: ts, Txn: tx, DirtyPage: dirtyPage}
	if err := m.arr.WriteParity(g, twin, parity, meta); err != nil {
		return 0, fmt.Errorf("twinpage: write working parity of group %d: %w", g, err)
	}
	return twin, nil
}

// RewriteWorking overwrites an existing working twin in place (the
// re-steal of the same page by the same transaction, Figure 3's dirty
// self-loop) with a refreshed timestamp.
func (m *Manager) RewriteWorking(g page.GroupID, twin int, parity page.Buf, tx page.TxID, ts page.Timestamp, dirtyPage page.PageID) error {
	meta := disk.Meta{State: disk.StateWorking, Timestamp: ts, Txn: tx, DirtyPage: dirtyPage}
	if err := m.arr.WriteParity(g, twin, parity, meta); err != nil {
		return fmt.Errorf("twinpage: rewrite working parity of group %d: %w", g, err)
	}
	return nil
}

// Invalidate resets the given twin's timestamp and marks it invalid (the
// abort transition of Figure 8).  The other twin remains current.  On a
// QParity array the index's Q partner is invalidated too — Q headers
// mirror their P twin (the lockstep invariant) even though arbitration
// only ever reads P headers.
func (m *Manager) Invalidate(g page.GroupID, twin int) error {
	meta := disk.Meta{State: disk.StateInvalid, Timestamp: 0}
	if m.arr.HasQ() {
		if err := m.arr.WriteQMeta(g, twin, meta); err != nil {
			return fmt.Errorf("twinpage: invalidate Q twin %d of group %d: %w", g, twin, err)
		}
	}
	if err := m.arr.WriteParityMeta(g, twin, meta); err != nil {
		return fmt.Errorf("twinpage: invalidate twin %d of group %d: %w", g, twin, err)
	}
	return nil
}

// CurrentParityFromDisk implements Figure 7 extended with transaction
// outcomes: it reads both twins' headers (two charged transfers) and
// returns the index of the valid parity page.
//
// A twin is a candidate when its header says committed, or when it says
// working/invalid but committed(txn) reports that its writer committed
// (the lazy on-disk state trailing a successful commit).  Among
// candidates the one with the larger timestamp wins; ties favour twin 0,
// matching the formatted state.
func (m *Manager) CurrentParityFromDisk(g page.GroupID, committed func(page.TxID) bool) (int, error) {
	m0, err := m.arr.ReadParityMeta(g, 0)
	if err != nil {
		return 0, fmt.Errorf("twinpage: read twin 0 header of group %d: %w", g, err)
	}
	m1, err := m.arr.ReadParityMeta(g, 1)
	if err != nil {
		return 0, fmt.Errorf("twinpage: read twin 1 header of group %d: %w", g, err)
	}
	valid := func(mm disk.Meta) bool {
		switch mm.State {
		case disk.StateCommitted, disk.StateObsolete:
			// Obsolete pages hold old committed parity: still a valid
			// basis, just expected to lose the timestamp comparison.
			return true
		case disk.StateWorking:
			return committed != nil && committed(mm.Txn)
		default:
			return false
		}
	}
	v0, v1 := valid(m0), valid(m1)
	switch {
	case v0 && v1:
		if m1.Timestamp > m0.Timestamp {
			return 1, nil
		}
		return 0, nil
	case v0:
		return 0, nil
	case v1:
		return 1, nil
	default:
		return 0, fmt.Errorf("twinpage: group %d has no valid parity twin (states %v/%v)", g, m0.State, m1.State)
	}
}

// RebuildBitmap reconstructs the whole bitmap after a crash by scanning
// every group's parity headers (the paper's background process,
// Section 4.2).  committed resolves the outcome of transactions found in
// working-state headers.
func (m *Manager) RebuildBitmap(committed func(page.TxID) bool) error {
	for g := range m.current {
		twin, err := m.CurrentParityFromDisk(page.GroupID(g), committed)
		if err != nil {
			return err
		}
		m.current[g] = uint8(twin)
	}
	return nil
}

// Reset zeroes the bitmap to the formatted default (twin 0 current).
// Used to model the loss of main memory in a crash *before* RebuildBitmap
// runs; reads between the two would be wrong, which is exactly why the
// paper rebuilds the bitmap before resuming normal processing.
func (m *Manager) Reset() {
	for i := range m.current {
		m.current[i] = 0
	}
}

// NumGroups returns the number of groups tracked.
func (m *Manager) NumGroups() int { return len(m.current) }
