package recovery

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dirtyset"
	"repro/internal/diskarray"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/wal"
)

func newStore(t *testing.T, kind diskarray.Kind) *core.Store {
	t.Helper()
	arr, err := diskarray.New(diskarray.Config{
		Kind: kind, DataDisks: 4, NumPages: 48, PageSize: page.MinSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewStore(arr, wal.New(wal.Config{LogPageSize: 256, WriteCost: 4}), txn.NewManager())
}

func TestAnalyzeOutcomes(t *testing.T) {
	log := wal.New(wal.DefaultConfig())
	log.Append(wal.Record{Type: wal.TypeBOT, Txn: 1, Slot: wal.NoSlot})
	log.Append(wal.Record{Type: wal.TypeBOT, Txn: 2, Slot: wal.NoSlot})
	log.Append(wal.Record{Type: wal.TypeEOT, Txn: 1, Slot: wal.NoSlot})
	log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot, Active: []page.TxID{2}})
	log.Append(wal.Record{Type: wal.TypeBOT, Txn: 3, Slot: wal.NoSlot})
	log.Append(wal.Record{Type: wal.TypeBeforeImage, Txn: 3, Page: 9, Slot: wal.NoSlot, Image: []byte{1}})
	log.Append(wal.Record{Type: wal.TypeBOT, Txn: 4, Slot: wal.NoSlot})
	log.Append(wal.Record{Type: wal.TypeAbort, Txn: 4, Slot: wal.NoSlot})
	log.Append(wal.Record{Type: wal.TypeAfterImage, Txn: 2, Page: 5, Slot: wal.NoSlot, Image: []byte{2}})
	log.Append(wal.Record{Type: wal.TypeEOT, Txn: 2, Slot: wal.NoSlot})

	a, err := Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	want := map[page.TxID]Outcome{
		1: OutcomeCommitted, 2: OutcomeCommitted, 3: OutcomeLoser, 4: OutcomeAborted,
	}
	for tx, o := range want {
		if a.Outcomes[tx] != o {
			t.Errorf("txn %d outcome = %v, want %v", tx, a.Outcomes[tx], o)
		}
	}
	if len(a.Losers) != 1 || a.Losers[0] != 3 {
		t.Errorf("losers = %v, want [3]", a.Losers)
	}
	if a.CheckpointLSN != 4 {
		t.Errorf("checkpoint LSN = %d, want 4", a.CheckpointLSN)
	}
	if len(a.LoserImages[3]) != 1 || a.LoserImages[3][0].Page != 9 {
		t.Errorf("loser images = %+v", a.LoserImages)
	}
	// Txn 2's after-image is after the checkpoint → needs replay; txn 1
	// committed before any after-images were written.
	if len(a.RedoImages) != 1 || a.RedoImages[0].Txn != 2 {
		t.Errorf("redo images = %+v", a.RedoImages)
	}
	if !a.Committed(1) || a.Committed(3) {
		t.Errorf("Committed predicate wrong")
	}
	// The analysis scan must charge log reads.
	if log.Stats().ReadTransfers == 0 {
		t.Errorf("analysis must charge log read transfers")
	}
}

func TestCrashRecoverEmptyLog(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	rep, err := CrashRecover(s, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losers) != 0 || rep.Redone != 0 || rep.UndoneViaLog != 0 || rep.UndoneViaParity != 0 {
		t.Fatalf("empty-log recovery did work: %+v", rep)
	}
}

func TestCrashRecoverBadPageImage(t *testing.T) {
	s := newStore(t, diskarray.RAID5)
	s.Log.Append(wal.Record{Type: wal.TypeBOT, Txn: 1, Slot: wal.NoSlot})
	s.Log.Append(wal.Record{Type: wal.TypeBeforeImage, Txn: 1, Page: 0, Slot: wal.NoSlot, Image: []byte{1, 2}}) // wrong size
	if _, err := CrashRecover(s, false, false); err == nil || !strings.Contains(err.Error(), "image") {
		t.Fatalf("err = %v, want image-size error", err)
	}
}

func TestCrashRecoverLaundersWinnerTwins(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	tm := s.TM
	tx := tm.Begin()
	data := page.NewBuf(page.MinSize)
	data[0] = 0xAA
	s.Log.Append(wal.Record{Type: wal.TypeBOT, Txn: tx.ID, Slot: wal.NoSlot})
	if err := s.StealNoLog(3, data, nil, tx); err != nil {
		t.Fatal(err)
	}
	s.Log.Append(wal.Record{Type: wal.TypeEOT, Txn: tx.ID, Slot: wal.NoSlot})
	// Crash before the lazily-updated twin header is touched again.
	s.ResetVolatile()
	rep, err := CrashRecover(s, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LaunderedTwins != 1 {
		t.Fatalf("laundered = %d, want 1", rep.LaunderedTwins)
	}
	// After recovery no working twins remain and the data survives.
	working, err := s.ScanWorkingTwins()
	if err != nil {
		t.Fatal(err)
	}
	if len(working) != 0 {
		t.Fatalf("working twins remain after recovery: %+v", working)
	}
	got, err := s.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA {
		t.Fatalf("winner's page lost")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMediaRejectsMissingBeforeImage(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	tx := s.TM.Begin()
	data := page.NewBuf(page.MinSize)
	data[0] = 1
	if err := s.StealNoLog(0, data, nil, tx); err != nil {
		t.Fatal(err)
	}
	// Fail the disk holding the group's COMMITTED twin while the group
	// is dirty; without a before-image the rebuild must refuse.
	g := s.Arr.GroupOf(0)
	e, _ := s.Dirty.Lookup(g)
	committedTwin := 1 - e.WorkingTwin
	d := s.Arr.ParityLoc(g, committedTwin).Disk
	if err := s.Arr.FailDisk(d); err != nil {
		t.Fatal(err)
	}
	err := RecoverMedia(s, d, func(page.GroupID, dirtyset.Entry) page.Buf { return nil })
	if err == nil || !strings.Contains(err.Error(), "before-image") {
		t.Fatalf("err = %v, want missing before-image error", err)
	}
}

func TestRecoverMediaWithBeforeImage(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	// Commit a baseline so the before-image is non-trivial.
	base := page.NewBuf(page.MinSize)
	base[0] = 0x11
	if err := s.WriteCommitted(0, base, nil); err != nil {
		t.Fatal(err)
	}
	tx := s.TM.Begin()
	newData := page.NewBuf(page.MinSize)
	newData[0] = 0x22
	if err := s.StealNoLog(0, newData, base, tx); err != nil {
		t.Fatal(err)
	}
	g := s.Arr.GroupOf(0)
	e, _ := s.Dirty.Lookup(g)
	committedTwin := 1 - e.WorkingTwin
	d := s.Arr.ParityLoc(g, committedTwin).Disk
	if err := s.Arr.FailDisk(d); err != nil {
		t.Fatal(err)
	}
	err := RecoverMedia(s, d, func(gg page.GroupID, ee dirtyset.Entry) page.Buf {
		if gg == g && ee.Page == 0 {
			return base
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt committed twin must still support the Figure 6 undo.
	p, restored, err := s.UndoGroupViaParity(g)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 || !restored.Equal(base) {
		t.Fatalf("undo after committed-twin rebuild failed")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMediaSingleParity(t *testing.T) {
	s := newStore(t, diskarray.RAID5)
	data := page.NewBuf(page.MinSize)
	data[0] = 0x77
	if err := s.WriteCommitted(7, data, nil); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < s.Arr.NumDisks(); d++ {
		if err := s.Arr.FailDisk(d); err != nil {
			t.Fatal(err)
		}
		if err := RecoverMedia(s, d, nil); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		got, err := s.ReadPage(7)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 0x77 {
			t.Fatalf("disk %d: page lost", d)
		}
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMediaMultiBothTwins(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	want := page.NewBuf(page.MinSize)
	want[0] = 0x66
	if err := s.WriteCommitted(0, want, nil); err != nil {
		t.Fatal(err)
	}
	g := s.Arr.GroupOf(0)
	d0 := s.Arr.ParityLoc(g, 0).Disk
	d1 := s.Arr.ParityLoc(g, 1).Disk
	if err := s.Arr.FailDisk(d0); err != nil {
		t.Fatal(err)
	}
	if err := s.Arr.FailDisk(d1); err != nil {
		t.Fatal(err)
	}
	lost, err := RecoverMediaMulti(s, []int{d0, d1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, lg := range lost {
		if lg == g {
			t.Fatalf("group %d lost only twins; must be recoverable", g)
		}
	}
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("page 0 corrupted")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMediaMultiDirtyCommittedPlusData(t *testing.T) {
	// A dirty group loses its committed twin AND a non-dirty data page;
	// the before-image lets both rebuild.
	s := newStore(t, diskarray.RAID5Twin)
	g := page.GroupID(0)
	pages := s.Arr.GroupPages(g)
	base := make(map[page.PageID]page.Buf)
	for i, p := range pages {
		b := pattern(page.MinSize, byte(0x10+i))
		if err := s.WriteCommitted(p, b, nil); err != nil {
			t.Fatal(err)
		}
		base[p] = b
	}
	tx := s.TM.Begin()
	dirtyPage := pages[0]
	newData := pattern(page.MinSize, 0xC7)
	if err := s.StealNoLog(dirtyPage, newData, base[dirtyPage], tx); err != nil {
		t.Fatal(err)
	}
	e, _ := s.Dirty.Lookup(g)
	committedTwin := 1 - e.WorkingTwin
	victim := pages[1]
	dA := s.Arr.ParityLoc(g, committedTwin).Disk
	dB := s.Arr.DataLoc(victim).Disk
	if err := s.Arr.FailDisk(dA); err != nil {
		t.Fatal(err)
	}
	if err := s.Arr.FailDisk(dB); err != nil {
		t.Fatal(err)
	}
	before := func(gg page.GroupID, ee dirtyset.Entry) page.Buf {
		if gg == g && ee.Page == dirtyPage {
			return base[dirtyPage]
		}
		return nil
	}
	lost, err := RecoverMediaMulti(s, []int{dA, dB}, before)
	if err != nil {
		t.Fatal(err)
	}
	for _, lg := range lost {
		if lg == g {
			t.Fatalf("group %d should rebuild via the before-image", g)
		}
	}
	got, err := s.ReadPage(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(base[victim]) {
		t.Fatalf("victim page not rebuilt correctly")
	}
	// The twin-parity undo must still work for the dirty page.
	p, restored, err := s.UndoGroupViaParity(g)
	if err != nil {
		t.Fatal(err)
	}
	if p != dirtyPage || !restored.Equal(base[dirtyPage]) {
		t.Fatalf("undo after double-failure rebuild broken")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMediaMultiReportsLoss(t *testing.T) {
	s := newStore(t, diskarray.RAID5)
	if err := s.WriteCommitted(0, pattern(page.MinSize, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Arr.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Arr.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	lost, err := RecoverMediaMulti(s, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) == 0 {
		t.Fatalf("single parity cannot survive a double failure; loss must be reported")
	}
	// The array is internally consistent again even where data was lost.
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

// pattern fills a buffer with a deterministic byte sequence.
func pattern(size int, seed byte) page.Buf {
	b := page.NewBuf(size)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}
