// Package recovery implements the restart (system crash) and media
// (disk failure) recovery drivers over the core store.
//
// # Crash recovery (Section 4.3)
//
// After a crash all main-memory state is gone: the buffer, the lock
// table, the Dirty_Set and the current-parity bitmap.  Restart proceeds
// in the following passes, each idempotent so that a crash during
// recovery simply restarts it:
//
//  1. Analysis — one charged scan of the log determines every
//     transaction's outcome.  Losers are transactions with a BOT but
//     neither EOT nor abort record.
//  2. Parity undo — the twin parity header scan (the same scan the paper
//     uses to rebuild the current-parity bitmap) locates every group
//     whose working twin belongs to a loser; the covered data page is
//     restored as D_old = (P ⊕ P′) ⊕ D_new and the twin invalidated.
//  3. Bitmap rebuild — Current_Parity (Figure 7) with log outcomes; twins
//     left in the working state by transactions that actually committed
//     are laundered to the committed state on disk.
//  4. Logged undo — losers' logged before-images (pages or records) are
//     written back through the store, newest first.
//  5. Abort records are appended for every loser.
//  6. REDO (¬FORCE algorithms) — winners' after-images logged after the
//     last checkpoint are replayed in log order.
//
// # Media recovery
//
// A failed disk is replaced and every affected parity group rebuilt from
// its surviving members.  For clean groups this is the classic RAID
// reconstruction against the current parity.  For groups that are dirty
// at the time of the failure the driver distinguishes which block was
// lost: the data page and the working twin rebuild from each other, and a
// lost committed twin is recomputed from the on-disk data plus the
// before-image of the dirty page that the engine retains in memory while
// the owning transaction is active.
package recovery

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dirtyset"
	"repro/internal/disk"
	"repro/internal/erasure"
	"repro/internal/page"
	"repro/internal/record"
	"repro/internal/wal"
	"repro/internal/workpool"
	"repro/internal/xorparity"
)

// Outcome classifies a transaction from the log.
type Outcome int

// Transaction outcomes discovered by analysis.
const (
	// OutcomeUnknown means the transaction never appeared in the log.
	OutcomeUnknown Outcome = iota
	// OutcomeLoser means active at the crash: BOT without EOT/abort.
	OutcomeLoser
	// OutcomeCommitted means an EOT record exists.
	OutcomeCommitted
	// OutcomeAborted means a completed rollback's abort record exists.
	OutcomeAborted
)

// Analysis is the result of the log analysis pass.
type Analysis struct {
	Outcomes      map[page.TxID]Outcome
	Losers        []page.TxID // sorted
	CheckpointLSN wal.LSN     // 0 when the log has no checkpoint
	// LoserImages holds each loser's before-image records in log order.
	LoserImages map[page.TxID][]wal.Record
	// RedoImages holds winners' after-image records with LSN after the
	// last checkpoint, in log order.
	RedoImages []wal.Record
	// Records is the total number of log records scanned.
	Records int
}

// Committed returns an outcome predicate suitable for
// core.Store.RebuildAfterCrash.
//
// A transaction UNKNOWN to the log is treated as committed.  This is
// what makes log truncation safe: a working parity twin can outlive its
// writer's EOT record (commits flip the bitmap and launder the on-disk
// header lazily), but it can never outlive its writer's BOT while the
// writer is undecided — truncation keeps everything from the oldest
// active BOT — and a completed abort invalidates its twins on disk
// before its abort record is written.  So an un-invalidated working twin
// whose writer the log no longer knows can only belong to a committed
// transaction.
func (a *Analysis) Committed(tx page.TxID) bool {
	o := a.Outcomes[tx]
	return o == OutcomeCommitted || o == OutcomeUnknown
}

// Analyze performs the (charged) analysis scan.
func Analyze(log *wal.Log) (*Analysis, error) {
	a := &Analysis{
		Outcomes:    make(map[page.TxID]Outcome),
		LoserImages: make(map[page.TxID][]wal.Record),
	}
	var all []wal.Record
	if err := log.Scan(1, func(r wal.Record) bool {
		all = append(all, r)
		return true
	}); err != nil {
		return nil, fmt.Errorf("recovery: analysis scan: %w", err)
	}
	a.Records = len(all)
	if len(all) > 0 {
		log.ChargeScan(1, all[len(all)-1].LSN)
	}
	for _, r := range all {
		switch r.Type {
		case wal.TypeBOT:
			if a.Outcomes[r.Txn] == OutcomeUnknown {
				a.Outcomes[r.Txn] = OutcomeLoser
			}
		case wal.TypeEOT:
			a.Outcomes[r.Txn] = OutcomeCommitted
		case wal.TypeAbort:
			a.Outcomes[r.Txn] = OutcomeAborted
		case wal.TypeCheckpoint:
			a.CheckpointLSN = r.LSN
		}
	}
	for tx, o := range a.Outcomes {
		if o == OutcomeLoser {
			a.Losers = append(a.Losers, tx)
		}
	}
	sort.Slice(a.Losers, func(i, j int) bool { return a.Losers[i] < a.Losers[j] })
	for _, r := range all {
		switch r.Type {
		case wal.TypeBeforeImage:
			if a.Outcomes[r.Txn] == OutcomeLoser {
				a.LoserImages[r.Txn] = append(a.LoserImages[r.Txn], r)
			}
		case wal.TypeAfterImage:
			if a.Outcomes[r.Txn] == OutcomeCommitted && r.LSN > a.CheckpointLSN {
				a.RedoImages = append(a.RedoImages, r)
			}
		}
	}
	return a, nil
}

// Report summarizes a completed restart.
type Report struct {
	Losers          []page.TxID
	UndoneViaParity int // data pages restored from twin parity
	UndoneViaLog    int // before-images written back
	Redone          int // after-images replayed
	LaunderedTwins  int // winner working twins promoted on disk
	RepairedTorn    int // torn blocks rebuilt from redundancy
	ResyncedGroups  int // groups whose parity was resynchronized

	// Degraded-restart counters (zero on a healthy array).
	//
	// UndoneViaReconstruction counts loser pages whose undo could not
	// run the plain Figure 6 identity because a group member sat on the
	// dead disk, and was instead served by reconstruction from the
	// surviving members (promoting the committed twin over a lost dirty
	// page, or rebuilding D_old from the committed twin when the working
	// twin was lost).
	UndoneViaReconstruction int
	// DeferredParityGroups counts groups whose parity member is on the
	// down disk: recovery re-establishes their surviving parity only,
	// and the restarted online rebuild recomputes the lost member.
	DeferredParityGroups int
	// LostPages lists pages whose contents genuinely exceeded the
	// surviving redundancy (for example a dirty group whose committed
	// twin died *unobserved* in the same instant as the crash, so no
	// demotion ever logged the before-image).  They are zeroed, parity
	// is made consistent, and the caller decides how loudly to escalate
	// — explicit, reported loss, never silent corruption.
	LostPages []page.PageID
}

// CrashRecover runs the full restart sequence described in the package
// comment.  redo selects whether the REDO pass runs (¬FORCE algorithms);
// FORCE algorithms have nothing to redo.
//
// hard marks a restart after a mid-I/O crash (the fault plane's crash
// points, as opposed to db.Crash()'s quiescent loss of volatile state).
// It enables two extra passes that only mid-I/O interleavings need: the
// torn-block repair scan after analysis, and the parity resynchronization
// after the bitmap rebuild, closing the window where an in-place parity
// read-modify-write ran ahead of its data write.  Quiescent restarts skip
// both so their transfer counts match the paper's cost model.
func CrashRecover(s *core.Store, redo, hard bool) (*Report, error) {
	a, err := Analyze(s.Log)
	if err != nil {
		return nil, err
	}
	rep := &Report{Losers: a.Losers}
	loser := func(tx page.TxID) bool { return a.Outcomes[tx] == OutcomeLoser }
	degraded := s.Degraded()

	// Pass 1.5: repair torn blocks from redundancy, so every later pass
	// can read every block.  On a degraded array the scan covers the
	// surviving members only.
	if hard {
		n, err := repairTorn(s, a, rep)
		if err != nil {
			return nil, err
		}
		rep.RepairedTorn = n
	}

	// Pass 2: parity undo via the twin header scan.  With a member down
	// the scan sees surviving twins only; crashUndoWorking dispatches each
	// loser twin to the plain Figure 6 identity or to its degraded
	// fallbacks (reconstruction from survivors, the logged before-image,
	// or — only when a committed twin died unobserved in the same instant
	// as the crash — explicit reported loss).
	if s.RDA() {
		working, err := s.ScanWorkingTwins()
		if err != nil {
			return nil, err
		}
		handled := make(map[page.GroupID]bool)
		for _, w := range working {
			if !loser(w.Txn) {
				continue
			}
			handled[w.Group] = true
			if err := crashUndoWorking(s, a, w, rep); err != nil {
				return nil, fmt.Errorf("recovery: parity undo of group %d: %w", w.Group, err)
			}
		}
		// Pass 2.5 (degraded only): the twin scan cannot see a loser's
		// working twin that sat on the dead disk.  Those steals are found
		// by the other half of the paper's machinery — the per-page
		// transaction tag of the TWIST chain — and unwound from the
		// surviving committed twin.
		if degraded {
			if err := undoDeadTwinLosers(s, a, handled, rep); err != nil {
				return nil, err
			}
		}
		// Pass 3: rebuild the bitmap and launder winners' working twins.
		if degraded {
			deferred, err := s.RebuildAfterCrashDegraded(a.Committed)
			if err != nil {
				return nil, err
			}
			rep.DeferredParityGroups = deferred
		} else if err := s.RebuildAfterCrash(a.Committed); err != nil {
			return nil, err
		}
		for _, w := range working {
			if !a.Committed(w.Txn) {
				continue
			}
			if degraded && (s.DeadTwin(w.Group) >= 0 || s.DeadQTwin(w.Group) >= 0) {
				// The degraded bitmap pass re-established this group's
				// surviving redundancy wholesale (committed, fresh
				// timestamp); re-stamping the old working header would
				// resurrect stale state.  The dead slots are the
				// rebuild's job.
				continue
			}
			meta := disk.Meta{State: disk.StateCommitted, Timestamp: w.Timestamp, Txn: w.Txn}
			if s.Arr.HasQ() {
				// Q headers mirror their P twin (the lockstep invariant);
				// the group's slots are all reachable here — dead-slot
				// groups were skipped above.
				if err := s.Arr.WriteQMeta(w.Group, w.Twin, meta); err != nil {
					return nil, fmt.Errorf("recovery: launder Q twin of group %d: %w", w.Group, err)
				}
			}
			if err := s.Arr.WriteParityMeta(w.Group, w.Twin, meta); err != nil {
				return nil, fmt.Errorf("recovery: launder twin of group %d: %w", w.Group, err)
			}
			rep.LaunderedTwins++
		}
	} else if degraded {
		// Single-parity array: no twins to undo from, but groups whose
		// parity block is lost must still be handed to the rebuild.
		deferred, err := s.RebuildAfterCrashDegraded(a.Committed)
		if err != nil {
			return nil, err
		}
		rep.DeferredParityGroups = deferred
	}

	// Pass 3.5: resynchronize parity with the on-disk data.  At this
	// point no working twins remain (losers' invalidated, winners'
	// laundered) and all remaining undo/redo is log-based, so forcing
	// every group's current parity to XOR(data) is safe — and necessary
	// when the crash fell between an in-place parity write and the data
	// write behind it.
	if hard {
		n, err := s.ResyncParity()
		if err != nil {
			return nil, err
		}
		rep.ResyncedGroups = n
	}

	// The loss declarations above (Pass 2/2.5) run before the log-based
	// passes, so a page can be declared lost and *then* rewritten by a
	// full-page log image — its content is log-determined after all, and
	// leaving it in LostPages would misreport recoverable (non-zero)
	// state as explicit loss.  Track the set and drop re-determined
	// pages; record-level images cannot re-determine a lost page (the
	// page base they would patch is gone), so they are skipped and the
	// page stays zeroed and reported.
	lostSet := make(map[page.PageID]bool, len(rep.LostPages))
	for _, p := range rep.LostPages {
		lostSet[p] = true
	}

	// Pass 4: logged undo, newest first per loser.
	for _, tx := range a.Losers {
		images := a.LoserImages[tx]
		for i := len(images) - 1; i >= 0; i-- {
			r := images[i]
			if lostSet[r.Page] && r.Slot != wal.NoSlot {
				continue
			}
			if err := applyImage(s, r, false); err != nil {
				return nil, fmt.Errorf("recovery: undo txn %d page %d: %w", tx, r.Page, err)
			}
			rep.UndoneViaLog++
			delete(lostSet, r.Page)
		}
	}

	// Pass 5: close out the losers on the log.
	for _, tx := range a.Losers {
		s.Log.Append(wal.Record{Type: wal.TypeAbort, Txn: tx, Slot: wal.NoSlot})
	}

	// Pass 6: REDO.
	if redo {
		for _, r := range a.RedoImages {
			if lostSet[r.Page] && r.Slot != wal.NoSlot {
				continue
			}
			if err := applyImage(s, r, true); err != nil {
				return nil, fmt.Errorf("recovery: redo txn %d page %d: %w", r.Txn, r.Page, err)
			}
			rep.Redone++
			delete(lostSet, r.Page)
		}
	}
	if len(lostSet) != len(rep.LostPages) {
		kept := rep.LostPages[:0]
		for _, p := range rep.LostPages {
			if lostSet[p] {
				kept = append(kept, p)
			}
		}
		rep.LostPages = kept
	}
	return rep, nil
}

// crashUndoWorking unwinds one loser's working twin.  On a healthy group
// this is the plain Figure 6 undo (CrashUndoWorkingTwin).  On a group
// with a member on the dead disk it dispatches by which member is gone:
//
//   - the dirty page itself: promote the committed twin and invalidate
//     the working one — the committed parity now *defines* the page's
//     before-image, served by reconstruction and materialized by the
//     rebuild (Figure 6 without the data write);
//   - the committed twin's P page: (P ⊕ P′) ⊕ D_new has nothing to XOR
//     against — but on a QParity array the committed index's Q partner
//     mirrors it (the lockstep invariant) and supplies D_old through the
//     Q equation.  Only when that is gone too does the undo fall back to
//     the logged before-image that the eager demotion's log-first
//     ordering guarantees whenever the disk's death was observed before
//     the crash.  If the death was *unobserved* (it coincided with the
//     crash) no demotion ever ran and D_old existed only on the dead
//     twin: explicit, reported data loss;
//   - a sibling data page: the undo's own reads never touch it — except
//     when the crash fell inside a re-steal (twin timestamp ahead of the
//     data page), whose recovery needs every other data page.  W ⊕ C
//     cancels the dead sibling but leaves two unknowns in one equation;
//     with a Q partner the second equation resolves them, otherwise
//     both pages are lost, explicitly.
func crashUndoWorking(s *core.Store, a *Analysis, w core.WorkingTwinInfo, rep *Report) error {
	if !s.GroupDegraded(w.Group) {
		if err := s.CrashUndoWorkingTwin(w); err != nil {
			return err
		}
		rep.UndoneViaParity++
		return nil
	}
	switch {
	case s.PageUnavailable(w.Page):
		s.Twins.Promote(w.Group, 1-w.Twin)
		if err := s.InvalidateIndexAlive(w.Group, w.Twin); err != nil {
			return err
		}
		rep.UndoneViaReconstruction++
		return nil
	case !s.TwinReadable(w.Group, 1-w.Twin):
		if s.QTwinReadable(w.Group, 1-w.Twin) {
			// The committed P twin died with its disk, but its Q partner
			// survives and describes the same pre-transaction state:
			// D_old solves through the Q equation directly.
			dOld, err := s.ReconstructDataAny(w.Group, w.Page, 1-w.Twin)
			if err == nil {
				if err := s.Arr.WriteData(w.Page, dOld, disk.Meta{}); err != nil {
					return fmt.Errorf("recovery: undo page %d via Q: %w", w.Page, err)
				}
				if err := s.InvalidateIndexAlive(w.Group, w.Twin); err != nil {
					return err
				}
				rep.UndoneViaReconstruction++
				return nil
			}
			// The Q route needs every other data page; a second loss in
			// the group falls through to the logged image or to loss.
		}
		if hasLoggedImage(a, w.Txn, w.Page) {
			// The demotion's log append completed before the crash; the
			// logged-undo pass restores D_old, and its degraded write
			// re-establishes the surviving parity and launders this
			// twin's working state along the way.
			return nil
		}
		lost, err := loseGroup(s, w.Group, []page.PageID{w.Page})
		if err != nil {
			return err
		}
		rep.LostPages = append(rep.LostPages, lost...)
		return nil
	}
	// The dead member is a sibling data page; w.Page and both twins are
	// readable.
	_, m, err := s.Arr.ReadData(w.Page)
	if err != nil {
		return fmt.Errorf("recovery: read tagged page %d: %w", w.Page, err)
	}
	if m.Txn == w.Txn && m.Timestamp != w.Timestamp {
		// Re-steal entanglement: the working twin describes a newer page
		// version than the platter, so the undo needs the committed index
		// — against two unknowns, the before-image and the dead sibling.
		// The committed P and Q together solve both; with single twin
		// parity it is one surviving equation and the group is lost.
		if dOld, ok := undoResteal(s, w); ok {
			if err := s.Arr.WriteData(w.Page, dOld, disk.Meta{}); err != nil {
				return fmt.Errorf("recovery: undo page %d via P+Q: %w", w.Page, err)
			}
			if err := s.InvalidateIndexAlive(w.Group, w.Twin); err != nil {
				return err
			}
			rep.UndoneViaReconstruction++
			return nil
		}
		lost, err := loseGroup(s, w.Group, []page.PageID{w.Page})
		if err != nil {
			return err
		}
		rep.LostPages = append(rep.LostPages, lost...)
		return nil
	}
	if err := s.CrashUndoWorkingTwin(w); err != nil {
		return err
	}
	rep.UndoneViaParity++
	return nil
}

// undoResteal solves the before-image of a re-stolen page whose group
// also lost a sibling data page to a down disk, using the committed
// index's P and Q equations together — two equations, two unknowns (the
// before-image and the dead sibling's value).  Reports false when the
// array has no Q redundancy or the committed index's slots do not both
// survive.
func undoResteal(s *core.Store, w core.WorkingTwinInfo) (page.Buf, bool) {
	return solvePairFromIndex(s, w.Group, w.Page, 1-w.Twin)
}

// solvePairFromIndex solves data page p of group g from index `from`'s P
// and Q equations, treating p itself AND the group's one dead data page
// as the two unknowns — the value returned for p is whatever `from`
// describes, regardless of p's platter contents.  Reports false when the
// array has no Q redundancy, either of the index's slots is dead, or a
// third unknown exceeds the two equations.
func solvePairFromIndex(s *core.Store, g page.GroupID, p page.PageID, from int) (page.Buf, bool) {
	if !s.Arr.HasQ() {
		return nil, false
	}
	if !s.TwinReadable(g, from) || !s.QTwinReadable(g, from) {
		return nil, false
	}
	pBuf, _, err := s.Arr.ReadParity(g, from)
	if err != nil {
		return nil, false
	}
	qBuf, _, err := s.Arr.ReadQ(g, from)
	if err != nil {
		return nil, false
	}
	pages := s.Arr.GroupPages(g)
	raw := make([][]byte, len(pages))
	i, j := -1, -1
	for k, q := range pages {
		switch {
		case q == p:
			i = k
		case s.PageUnavailable(q):
			if j >= 0 {
				return nil, false // a third unknown exceeds the equations
			}
			j = k
		default:
			b, _, rerr := s.Arr.ReadData(q)
			if rerr != nil {
				return nil, false
			}
			raw[k] = b
		}
	}
	if i < 0 || j < 0 {
		return nil, false
	}
	if i > j {
		_, dj := erasure.ReconstructTwo(pBuf, qBuf, raw, j, i)
		return page.Buf(dj), true
	}
	di, _ := erasure.ReconstructTwo(pBuf, qBuf, raw, i, j)
	return page.Buf(di), true
}

// undoDeadTwinLosers finds loser steals whose working twin sat on the
// dead disk, invisible to the twin header scan.  The steal's data write
// carries the writer's transaction tag (the TWIST chain), so scanning
// the surviving data pages of every group with an unreadable twin
// recovers exactly the set: an unresolved loser tag under a dead twin
// means the dead twin was the working one, hence the surviving twin is
// the committed one — it describes the group with the page at its
// before-image, which therefore reconstructs as D_old = P_cmt ⊕ (other
// data).  A tag whose before-image reached the log (the group was being
// demoted when the crash hit) is left to the logged-undo pass instead.
func undoDeadTwinLosers(s *core.Store, a *Analysis, handled map[page.GroupID]bool, rep *Report) error {
	if s.Twins == nil {
		return nil
	}
	for g := 0; g < s.Arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		if handled[gid] {
			continue
		}
		dead := s.DeadTwin(gid)
		if dead < 0 || s.TwinReadable(gid, dead) {
			continue
		}
		for _, p := range s.Arr.GroupPages(gid) {
			if s.PageUnavailable(p) {
				continue
			}
			_, m, err := s.Arr.ReadData(p)
			if err != nil {
				return fmt.Errorf("recovery: tag scan of group %d: %w", g, err)
			}
			if !m.ChainSet || a.Outcomes[m.Txn] != OutcomeLoser {
				continue
			}
			if hasLoggedImage(a, m.Txn, p) {
				continue
			}
			// The surviving index is normally the other twin; when BOTH P
			// slots are down (double-degraded) the Q headers — mirrors of
			// their P partners — arbitrate which index is the committed
			// one: the one NOT carrying the loser's working state.
			undoFrom := 1 - dead
			if !s.TwinReadable(gid, undoFrom) {
				for t := 0; t < 2; t++ {
					if !s.QTwinReadable(gid, t) {
						continue
					}
					qm, qerr := s.Arr.ReadQMeta(gid, t)
					if qerr == nil && !(qm.State == disk.StateWorking && qm.Txn == m.Txn) {
						undoFrom = t
						break
					}
				}
			}
			// When the group also lost a data sibling, one equation is not
			// enough: solve the before-image AND the dead sibling together
			// from the surviving index's P and Q.  The platter is restored
			// directly — the index's equations already describe exactly the
			// restored state, so no recompute may touch them (a recompute
			// would consult the reset twin bitmap this early in recovery).
			if deadSib := groupLostData(s, gid, p); deadSib {
				dOld, ok := solvePairFromIndex(s, gid, p, undoFrom)
				if !ok {
					lost, lerr := loseGroup(s, gid, []page.PageID{p})
					if lerr != nil {
						return lerr
					}
					rep.LostPages = append(rep.LostPages, lost...)
					break
				}
				if err := s.Arr.WriteData(p, dOld, disk.Meta{}); err != nil {
					return fmt.Errorf("recovery: tag undo of page %d: %w", p, err)
				}
				rep.UndoneViaReconstruction++
				continue
			}
			dOld, err := s.ReconstructDataAny(gid, p, undoFrom)
			if err != nil {
				return fmt.Errorf("recovery: tag undo of page %d: %w", p, err)
			}
			if err := s.WriteCommitted(p, dOld, nil); err != nil {
				return fmt.Errorf("recovery: tag undo of page %d: %w", p, err)
			}
			rep.UndoneViaReconstruction++
		}
	}
	return nil
}

// groupLostData reports whether group g has a data page other than p on
// a down disk.
func groupLostData(s *core.Store, g page.GroupID, p page.PageID) bool {
	for _, q := range s.Arr.GroupPages(g) {
		if q != p && s.PageUnavailable(q) {
			return true
		}
	}
	return false
}

// hasLoggedImage reports whether analysis found a logged before-image of
// page p for loser tx.  The eager demotion's log-first ordering
// guarantees one whenever a degraded group's no-log steal was demoted —
// even a demotion the crash itself interrupted.
func hasLoggedImage(a *Analysis, tx page.TxID, p page.PageID) bool {
	for _, r := range a.LoserImages[tx] {
		if r.Page == p {
			return true
		}
	}
	return false
}

// loseGroup abandons state the surviving redundancy can no longer
// determine: the listed readable pages are zeroed (cleared headers), the
// group's unreachable data pages are recorded as lost (they rebuild as
// whatever the recomputed redundancy implies — zero), and every
// *readable* redundancy page is rewritten consistent with the remaining
// data (the first reachable index committed with a fresh timestamp and
// promoted, the rest obsolete; a Q page mirrors its index's P header).
// The returned list feeds Report.LostPages — the explicit data-loss
// event a DBA answers with an archive restore, mirroring the
// RecoverMediaMulti contract for losses beyond redundancy.
func loseGroup(s *core.Store, g page.GroupID, zero []page.PageID) ([]page.PageID, error) {
	lost := append([]page.PageID(nil), zero...)
	for _, p := range zero {
		if err := s.Arr.WriteData(p, make(page.Buf, s.Arr.PageSize()), disk.Meta{}); err != nil {
			return nil, fmt.Errorf("recovery: zero lost page %d: %w", p, err)
		}
	}
	pages := s.Arr.GroupPages(g)
	vals := make([][]byte, len(pages))
	var blocks [][]byte
	for i, q := range pages {
		if s.PageUnavailable(q) {
			lost = append(lost, q)
			continue
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			return nil, fmt.Errorf("recovery: read lost group %d page %d: %w", g, q, err)
		}
		vals[i] = b
		blocks = append(blocks, b)
	}
	parity := page.Buf(xorparity.Compute(s.Arr.PageSize(), blocks...))
	var qParity page.Buf
	if s.Arr.HasQ() {
		// Positional: a lost member contributes zero to its coefficient.
		qParity = page.Buf(erasure.ComputeQ(s.Arr.PageSize(), vals...))
	}
	first := true
	for twin := 0; twin < s.Arr.ParityPages(); twin++ {
		pOK := s.TwinReadable(g, twin)
		qOK := s.Arr.HasQ() && s.QTwinReadable(g, twin)
		if !pOK && !qOK {
			continue
		}
		meta := disk.Meta{State: disk.StateObsolete}
		if first {
			meta = disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		}
		if qOK {
			if err := s.Arr.WriteQ(g, twin, qParity, meta); err != nil {
				return nil, fmt.Errorf("recovery: reset Q of lost group %d: %w", g, err)
			}
		}
		if pOK {
			if err := s.Arr.WriteParity(g, twin, parity, meta); err != nil {
				return nil, fmt.Errorf("recovery: reset parity of lost group %d: %w", g, err)
			}
		}
		if s.Twins != nil && first {
			s.Twins.Promote(g, twin)
		}
		first = false
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	return lost, nil
}

// repairTorn scans every block for silent corruption — a torn write's
// checksum mismatch, a misdirected write's stamp mismatch, or a lost
// write's ledger mismatch — and rebuilds its payload from the group's
// redundancy, so every later pass can read every block.  A torn write IS
// the crash, so at most one block per restart is torn, but the scan
// handles any number (latent faults accumulate).  The scan's reads are
// charged, like every recovery pass.  On a degraded array the scan skips
// the dead disk's blocks; a corrupt block in a group that ALSO lost a
// member to the disk is repaired from what survives, or reported lost
// when the two together exceed the redundancy.
//
// Each finding records whether the block's own header is still
// trustworthy: a checksum failure damages only the payload (the header is
// out-of-band and the block's own), while a misdirected write deposits a
// foreign header and a lost write leaves a stale one — those repairs must
// resynthesize the header from the rest of the group.
//
// The scan — a charged read of every live block — is the expensive part
// and touches nothing shared, so it fans out across the store's Workers,
// each worker filling its own group's slot of the findings table.  The
// repairs themselves (at most one per restart in practice) then run
// sequentially in group order, because they mutate the shared Report and
// the twin bitmap.
func repairTorn(s *core.Store, a *Analysis, rep *Report) (int, error) {
	type torn struct {
		parity   bool
		qparity  bool
		p        page.PageID // data page, when !parity && !qparity
		twin     int         // parity/Q twin, when parity or qparity
		headerOK bool        // the block's own header survived the fault
	}
	found := make([][]torn, s.Arr.NumGroups())
	err := workpool.Run(s.Workers, s.Arr.NumGroups(), func(g int) error {
		gid := page.GroupID(g)
		for _, p := range s.Arr.GroupPages(gid) {
			if s.PageUnavailable(p) {
				continue
			}
			_, _, err := s.Arr.ReadData(p)
			if err == nil {
				continue
			}
			if !disk.IsCorrupt(err) {
				return fmt.Errorf("recovery: torn scan page %d: %w", p, err)
			}
			found[g] = append(found[g], torn{p: p, headerOK: errors.Is(err, disk.ErrChecksum)})
		}
		for twin := 0; twin < s.Arr.ParityPages(); twin++ {
			if !s.TwinReadable(gid, twin) {
				continue
			}
			_, _, err := s.Arr.ReadParity(gid, twin)
			if err == nil {
				continue
			}
			if !disk.IsCorrupt(err) {
				return fmt.Errorf("recovery: torn scan group %d twin %d: %w", g, twin, err)
			}
			found[g] = append(found[g], torn{parity: true, twin: twin, headerOK: errors.Is(err, disk.ErrChecksum)})
		}
		// Q pages last: their repair reuses the group's P partner as the
		// authority, which the earlier items of the same group restore.
		for twin := 0; twin < s.Arr.QParityPages(); twin++ {
			if !s.QTwinReadable(gid, twin) {
				continue
			}
			_, _, err := s.Arr.ReadQ(gid, twin)
			if err == nil {
				continue
			}
			if !disk.IsCorrupt(err) {
				return fmt.Errorf("recovery: torn scan group %d Q twin %d: %w", g, twin, err)
			}
			found[g] = append(found[g], torn{qparity: true, twin: twin, headerOK: errors.Is(err, disk.ErrChecksum)})
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	repaired := 0
	for g, items := range found {
		gid := page.GroupID(g)
		for _, it := range items {
			switch {
			case it.qparity:
				if err := repairTornQ(s, gid, it.twin); err != nil {
					return repaired, err
				}
			case it.parity:
				if err := repairTornParity(s, a, gid, it.twin, it.headerOK, rep); err != nil {
					return repaired, err
				}
			default:
				if err := repairTornData(s, a, gid, it.p, it.headerOK, rep); err != nil {
					return repaired, err
				}
			}
			repaired++
		}
	}
	return repaired, nil
}

// repairTornQ rebuilds a corrupt Q page.  Its P partner — alive (dead
// slots are excluded by the scan) and already repaired by the earlier
// items of the same group — is the authority for which data state S the
// index describes: if the partner's payload verifies against the on-disk
// data, S is the data itself; otherwise S differs in exactly one member,
// the page named by the partner's own header (a working steal or a flip
// pairing) or by the other twin's unresolved working header (this index
// is then the committed partner of an in-flight steal), and that member
// solves as P ⊕ (other data).  The rewritten Q mirrors the partner's
// header (the lockstep invariant).  When no authority can be
// established — the P partner unreadable, a group member unreachable, or
// no header naming the differing member — the Q page is zeroed invalid:
// honest erasure, never a silently wrong equation.
func repairTornQ(s *core.Store, g page.GroupID, twin int) error {
	invalidate := func() error {
		zero := make(page.Buf, s.Arr.PageSize())
		if err := s.Arr.WriteQ(g, twin, zero, disk.Meta{State: disk.StateInvalid}); err != nil {
			return fmt.Errorf("recovery: invalidate torn Q of group %d: %w", g, err)
		}
		return nil
	}
	if !s.TwinReadable(g, twin) {
		return invalidate()
	}
	pBuf, pm, err := s.Arr.ReadParity(g, twin)
	if err != nil {
		return invalidate()
	}
	pages := s.Arr.GroupPages(g)
	raw := make([][]byte, len(pages))
	for i, p := range pages {
		if s.PageUnavailable(p) {
			return invalidate()
		}
		b, _, rerr := s.Arr.ReadData(p)
		if rerr != nil {
			return invalidate()
		}
		raw[i] = b
	}
	if xorparity.Verify(pBuf, raw...) {
		q := erasure.ComputeQ(s.Arr.PageSize(), raw...)
		if err := s.Arr.WriteQ(g, twin, q, pm); err != nil {
			return fmt.Errorf("recovery: repair torn Q of group %d: %w", g, err)
		}
		return nil
	}
	var named page.PageID
	foundNamed := false
	if pm.State == disk.StateWorking || pm.PairedSet {
		named, foundNamed = pm.DirtyPage, true
	} else if s.Twins != nil {
		if om, oerr := s.Arr.ReadParityMeta(g, 1-twin); oerr == nil && om.State == disk.StateWorking {
			named, foundNamed = om.DirtyPage, true
		}
	}
	if !foundNamed {
		return invalidate()
	}
	idx := -1
	for i, p := range pages {
		if p == named {
			idx = i
		}
	}
	if idx < 0 {
		return invalidate()
	}
	others := make([][]byte, 0, len(raw))
	others = append(others, pBuf)
	for i, b := range raw {
		if i != idx {
			others = append(others, b)
		}
	}
	described := make([][]byte, len(raw))
	copy(described, raw)
	described[idx] = xorparity.Reconstruct(s.Arr.PageSize(), others...)
	q := erasure.ComputeQ(s.Arr.PageSize(), described...)
	if err := s.Arr.WriteQ(g, twin, q, pm); err != nil {
		return fmt.Errorf("recovery: repair torn Q of group %d: %w", g, err)
	}
	return nil
}

// repairTornData rebuilds a corrupt data page.
//
// If a loser's working twin covers the page, the fault interrupted a
// no-UNDO steal: the committed twin still describes the pre-transaction
// group, so the page is restored to its before-image with a cleared
// header (the parity-undo pass then merely invalidates the twin).
// Otherwise the fault hit a committed or logged write-back whose parity
// update preceded it, so the Figure 7 current twin describes the intended
// contents; the page is rebuilt from it under the header the torn write
// itself persisted — or, when the fault destroyed the header too
// (misdirected or lost write), under a resynthesized one: the flip
// pairing echo is restored when the describing parity names this page,
// and cleared otherwise.
func repairTornData(s *core.Store, a *Analysis, g page.GroupID, p page.PageID, headerOK bool, rep *Report) error {
	if s.GroupDegraded(g) {
		return repairTornDataDegraded(s, a, g, p, headerOK, rep)
	}
	if s.RDA() {
		for twin := 0; twin < 2; twin++ {
			m, err := s.Arr.ReadParityMeta(g, twin)
			if err != nil {
				return err
			}
			if m.State != disk.StateWorking || m.DirtyPage != p || a.Committed(m.Txn) {
				continue
			}
			dOld, err := s.ReconstructData(g, p, 1-twin)
			if err != nil {
				return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
			}
			if err := s.Arr.WriteData(p, dOld, disk.Meta{}); err != nil {
				return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
			}
			return nil
		}
	}
	// Reconstruct from the twin that describes the on-disk data, which is
	// NOT always the Figure 7 winner: parity precedes data in both the
	// flip and steal protocols, so at crash time the newest twin may
	// describe a data write that never landed, and reconstructing an
	// innocent bystander from it would XOR the phantom delta into the
	// repaired page — silent corruption under a perfectly valid header.
	// DescribingTwin arbitrates via the pairing echo.
	twin, err := s.DescribingTwin(g, p, a.Committed)
	if err != nil {
		return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
	}
	if os.Getenv("TRACE_FAULT") != "" {
		fmt.Printf("TRACE tornrepair page %d group %d from twin %d (headerOK=%v)\n", p, g, twin, headerOK)
		for tw := 0; tw < 2; tw++ {
			m, _ := s.Arr.PeekParityMeta(g, tw)
			fmt.Printf("TRACE   twin %d meta: state=%v ts=%d txn=%d dirty=%d paired=%v committed=%v\n", tw, m.State, m.Timestamp, m.Txn, m.DirtyPage, m.PairedSet, a.Committed(m.Txn))
		}
		for _, q := range s.Arr.GroupPages(g) {
			loc := s.Arr.DataLoc(q)
			dm, _ := s.Arr.Disk(loc.Disk).PeekMeta(loc.Block)
			b, _ := s.Arr.PeekData(q)
			fmt.Printf("TRACE   page %d meta: ts=%d txn=%d chain=%v data=%x\n", q, dm.Timestamp, dm.Txn, dm.ChainSet, b[:8])
		}
		for tw := 0; tw < 2; tw++ {
			r, err := s.ReconstructData(g, p, tw)
			if err != nil {
				fmt.Printf("TRACE   reconstruct p from twin %d: err %v\n", tw, err)
			} else {
				fmt.Printf("TRACE   reconstruct p from twin %d = %x\n", tw, r[:8])
			}
		}
	}
	data, err := s.ReconstructData(g, p, twin)
	if err != nil {
		return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
	}
	var hdr disk.Meta
	if headerOK {
		loc := s.Arr.DataLoc(p)
		hdr, err = s.Arr.Disk(loc.Disk).PeekMeta(loc.Block)
		if err != nil {
			return err
		}
	} else {
		pm, err := s.Arr.PeekParityMeta(g, twin)
		if err != nil {
			return err
		}
		switch {
		case pm.State == disk.StateWorking && pm.DirtyPage == p:
			// Parity-as-redo from a steal twin whose acked data write was
			// lost: restore the steal's echo header.  The true ChainPrev
			// is unrecoverable, but chains are only ever walked for
			// losers and only a committed writer's twin can be the
			// reconstruction source here.
			hdr = disk.Meta{Txn: pm.Txn, Timestamp: pm.Timestamp, ChainSet: true}
		case pm.PairedSet && pm.DirtyPage == p:
			hdr = disk.Meta{Timestamp: pm.Timestamp}
		}
	}
	if err := s.Arr.WriteData(p, data, hdr); err != nil {
		return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
	}
	return nil
}

// repairTornDataDegraded repairs a corrupt data page in a group that also
// lost a block to the dead disk.  Only the cases where the surviving
// redundancy still pins the page down are repairable; anything else is
// explicit, reported loss via loseGroup.
func repairTornDataDegraded(s *core.Store, a *Analysis, g page.GroupID, p page.PageID, headerOK bool, rep *Report) error {
	dead := s.DeadTwin(g)
	if dead < 0 || s.Twins == nil || !s.TwinReadable(g, 1-dead) {
		// No alive parity twin to arbitrate from: the group lost a data
		// page or a Q slot (dead < 0), or — double-degraded — both P
		// slots.  On a single-parity array a tear plus a dead member is
		// two unknowns against at most one surviving equation; with Q
		// redundancy the group may still be fully determined.
		if s.Arr.HasQ() && s.Twins != nil {
			done, err := repairTornDataViaSolve(s, a, g, p, headerOK)
			if done || err != nil {
				return err
			}
		}
		lost, err := loseGroup(s, g, []page.PageID{p})
		if err != nil {
			return err
		}
		rep.LostPages = append(rep.LostPages, lost...)
		return nil
	}
	alive := 1 - dead
	m, err := s.Arr.ReadParityMeta(g, alive)
	if err != nil {
		return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
	}
	if m.State == disk.StateWorking && !a.Committed(m.Txn) && m.DirtyPage == p {
		// The tear interrupted a no-log steal whose committed twin died
		// with the disk: D_old survives on the log (if the eager demotion
		// got there before the crash) or in the dead index's Q partner.
		if hasLoggedImage(a, m.Txn, p) {
			// Zero placeholder; the logged-undo pass restores D_old and
			// its degraded write re-establishes the surviving parity.
			if err := s.Arr.WriteData(p, make(page.Buf, s.Arr.PageSize()), disk.Meta{}); err != nil {
				return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
			}
			return nil
		}
		if s.Arr.HasQ() && s.QTwinReadable(g, dead) {
			// The dead committed twin's Q partner still describes the
			// pre-steal group: undo the steal directly from it.
			if dOld, rerr := s.ReconstructDataAny(g, p, dead); rerr == nil {
				if err := s.Arr.WriteData(p, dOld, disk.Meta{}); err != nil {
					return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
				}
				return s.InvalidateIndexAlive(g, alive)
			}
		}
		lost, err := loseGroup(s, g, []page.PageID{p})
		if err != nil {
			return err
		}
		rep.LostPages = append(rep.LostPages, lost...)
		return nil
	}
	if m.State == disk.StateCommitted || (m.State == disk.StateWorking && a.Committed(m.Txn)) {
		// The surviving twin describes the on-disk group — unless some
		// *other* page carries an unresolved no-log steal whose D_new
		// the twin does not yet include; that combination leaves the
		// torn page undetermined.
		for _, q := range s.Arr.GroupPages(g) {
			if q == p {
				continue
			}
			_, qm, err := s.Arr.ReadData(q)
			if err != nil {
				if disk.IsCorrupt(err) {
					continue // a second corrupt block; reconstruction below fails loudly
				}
				return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
			}
			if qm.ChainSet && a.Outcomes[qm.Txn] == OutcomeLoser && !hasLoggedImage(a, qm.Txn, q) && m.State == disk.StateCommitted {
				lost, err := loseGroup(s, g, []page.PageID{p})
				if err != nil {
					return err
				}
				rep.LostPages = append(rep.LostPages, lost...)
				return nil
			}
		}
		data, err := s.ReconstructData(g, p, alive)
		if err != nil {
			return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
		}
		var hdr disk.Meta
		if headerOK {
			loc := s.Arr.DataLoc(p)
			hdr, err = s.Arr.Disk(loc.Disk).PeekMeta(loc.Block)
			if err != nil {
				return err
			}
		} else if m.PairedSet && m.DirtyPage == p {
			hdr = disk.Meta{Timestamp: m.Timestamp}
		}
		if err := s.Arr.WriteData(p, data, hdr); err != nil {
			return fmt.Errorf("recovery: repair torn page %d: %w", p, err)
		}
		return nil
	}
	// Obsolete or invalid survivor: the only twin describing the group
	// died with the disk.
	lost, err := loseGroup(s, g, []page.PageID{p})
	if err != nil {
		return err
	}
	rep.LostPages = append(rep.LostPages, lost...)
	return nil
}

// repairTornDataViaSolve repairs a torn data page in a degraded group by
// solving the group through a describing index's surviving P/Q
// equations.  The describing index is picked from the readable headers —
// alive P slots first, Q mirrors as proxies for dead ones — by the
// Figure 7 rule: newest committed index, a working index whose writer
// committed counting as laundered-committed.  Unresolved no-log steals
// are declined (their before-images belong to the undo machinery, not a
// blanket solve) and fall back to the caller's explicit loss path, as
// does a group with fewer surviving equations than erasures.  Returns
// done=false when the caller must fall back.
func repairTornDataViaSolve(s *core.Store, a *Analysis, g page.GroupID, p page.PageID, headerOK bool) (bool, error) {
	var metas [2]disk.Meta
	var have [2]bool
	for t := 0; t < 2; t++ {
		if s.TwinReadable(g, t) {
			if m, err := s.Arr.ReadParityMeta(g, t); err == nil {
				metas[t], have[t] = m, true
				continue
			}
		}
		if s.QTwinReadable(g, t) {
			if m, err := s.Arr.ReadQMeta(g, t); err == nil {
				metas[t], have[t] = m, true
			}
		}
	}
	idx := -1
	var best disk.Meta
	for t := 0; t < 2; t++ {
		if !have[t] {
			continue
		}
		m := metas[t]
		if m.State == disk.StateWorking {
			if !a.Committed(m.Txn) {
				return false, nil
			}
			m.State = disk.StateCommitted
		}
		if m.State != disk.StateCommitted {
			continue
		}
		if idx < 0 || m.Timestamp > best.Timestamp {
			idx, best = t, m
		}
	}
	if idx < 0 {
		return false, nil
	}
	// A member tag of an unresolved no-log steal means the committed
	// index predates the steal's data write: the solved value for the
	// stolen page would be stale.  Decline, like the plain degraded path.
	for _, q := range s.Arr.GroupPages(g) {
		if q == p || s.PageUnavailable(q) {
			continue
		}
		_, qm, err := s.Arr.ReadData(q)
		if err != nil {
			if disk.IsCorrupt(err) {
				continue // another erasure; SolveGroup accounts for it
			}
			return false, fmt.Errorf("recovery: repair torn page %d: %w", p, err)
		}
		if qm.ChainSet && a.Outcomes[qm.Txn] == OutcomeLoser && !hasLoggedImage(a, qm.Txn, q) {
			return false, nil
		}
	}
	vals, err := s.SolveGroup(g, idx)
	if err != nil {
		if errors.Is(err, core.ErrUnrecoverableCorruption) {
			return false, nil
		}
		return false, err
	}
	var data page.Buf
	for i, q := range s.Arr.GroupPages(g) {
		if q == p {
			data = vals[i]
		}
	}
	hdr := disk.Meta{}
	if headerOK {
		loc := s.Arr.DataLoc(p)
		m, err := s.Arr.Disk(loc.Disk).PeekMeta(loc.Block)
		if err != nil {
			return false, err
		}
		hdr = m
	} else if best.PairedSet && best.DirtyPage == p {
		hdr = disk.Meta{Timestamp: best.Timestamp}
	}
	if err := s.Arr.WriteData(p, data, hdr); err != nil {
		return false, fmt.Errorf("recovery: repair torn page %d: %w", p, err)
	}
	return true, nil
}

// repairTornParity rebuilds a corrupt parity twin.
//
// A torn twin in the working state whose writer lost means the tear
// interrupted the steal's parity write itself.  If the covered data page
// already carries the writer's tag the tear hit a re-steal, so the page
// is first restored from the committed twin; either way the torn twin is
// rewritten as invalid with a zero payload.  Any other header — committed,
// obsolete, or a stale working header whose writer committed — belongs to
// an in-place read-modify-write that ran ahead of its data write: the
// payload is recomputed from the on-disk data under the persisted header.
//
// A twin whose header did NOT survive the fault (misdirected or lost
// write) cannot make those decisions from its own header; see
// repairHeaderlessParity.
func repairTornParity(s *core.Store, a *Analysis, g page.GroupID, twin int, headerOK bool, rep *Report) error {
	if s.GroupDegraded(g) {
		return repairTornParityDegraded(s, a, g, twin, headerOK, rep)
	}
	if !headerOK {
		return repairHeaderlessParity(s, a, g, twin, rep)
	}
	hdr, err := s.Arr.PeekParityMeta(g, twin)
	if err != nil {
		return err
	}
	if hdr.State == disk.StateWorking && !a.Committed(hdr.Txn) {
		p := hdr.DirtyPage
		_, dMeta, err := s.Arr.ReadData(p)
		if err != nil {
			return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
		}
		if dMeta.Txn == hdr.Txn {
			dOld, err := s.ReconstructData(g, p, 1-twin)
			if err != nil {
				return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
			}
			if err := s.Arr.WriteData(p, dOld, disk.Meta{}); err != nil {
				return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
			}
		}
		zero := make(page.Buf, s.Arr.PageSize())
		if err := s.Arr.WriteParity(g, twin, zero, disk.Meta{State: disk.StateInvalid}); err != nil {
			return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
		}
		return s.InvalidateIndexAlive(g, twin)
	}
	if err := recomputeIndex(s, g, twin, hdr); err != nil {
		return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
	}
	return nil
}

// recomputeIndex rewrites redundancy index `twin` of group g from the
// on-disk data — Q first, then P, under the same header (the lockstep
// invariant).  Dead slots are skipped; the rebuild worker re-derives
// them once the drive is replaced.
func recomputeIndex(s *core.Store, g page.GroupID, twin int, meta disk.Meta) error {
	if s.Arr.HasQ() && s.QSlotAlive(g, twin) {
		if err := s.Arr.RecomputeQ(g, twin, meta); err != nil {
			return err
		}
	}
	if s.ParitySlotAlive(g, twin) {
		return s.Arr.RecomputeParity(g, twin, meta)
	}
	return nil
}

// repairHeaderlessParity rebuilds a parity twin whose header cannot be
// trusted — a misdirected write deposited a foreign one, or a lost write
// left a stale one.  The decision the header would have made is
// reconstructed from the rest of the group:
//
//   - the OTHER twin holds a loser's working header: this twin was the
//     committed pre-steal parity, the only carrier of D_old.  If the
//     steal was also logged the log determines D_old — demote the steal
//     (invalidate the working twin) and recompute this twin over the
//     on-disk data; otherwise the before-image is genuinely gone and the
//     group is abandoned to explicit, reported loss;
//   - a member page carries an unresolved loser tag: the steal's parity
//     write is ordered before its data write, so a landed tag under a
//     corrupt twin means THIS twin was the loser's working parity.  The
//     page restores from the other (committed) twin and this twin is
//     invalidated;
//   - otherwise the on-disk data is authoritative: the twin recomputes
//     as fresh committed parity (the Figure 7 rebuild then orders it).
func repairHeaderlessParity(s *core.Store, a *Analysis, g page.GroupID, twin int, rep *Report) error {
	if s.Twins != nil {
		om, err := s.Arr.ReadParityMeta(g, 1-twin)
		if err != nil {
			return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
		}
		if om.State == disk.StateWorking && !a.Committed(om.Txn) {
			if hasLoggedImage(a, om.Txn, om.DirtyPage) {
				meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
				if err := recomputeIndex(s, g, twin, meta); err != nil {
					return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
				}
				return s.InvalidateIndexAlive(g, 1-twin)
			}
			lost, err := loseGroup(s, g, []page.PageID{om.DirtyPage})
			if err != nil {
				return err
			}
			rep.LostPages = append(rep.LostPages, lost...)
			return nil
		}
		for _, q := range s.Arr.GroupPages(g) {
			_, qm, err := s.Arr.ReadData(q)
			if err != nil {
				if disk.IsCorrupt(err) {
					continue // a second corrupt block; reconstruction fails loudly
				}
				return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
			}
			if !qm.ChainSet || a.Outcomes[qm.Txn] != OutcomeLoser || hasLoggedImage(a, qm.Txn, q) {
				continue
			}
			dOld, err := s.ReconstructData(g, q, 1-twin)
			if err != nil {
				return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
			}
			if err := s.Arr.WriteData(q, dOld, disk.Meta{}); err != nil {
				return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
			}
			zero := make(page.Buf, s.Arr.PageSize())
			if err := s.Arr.WriteParity(g, twin, zero, disk.Meta{State: disk.StateInvalid}); err != nil {
				return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
			}
			return s.InvalidateIndexAlive(g, twin)
		}
	}
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
	if err := recomputeIndex(s, g, twin, meta); err != nil {
		return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
	}
	return nil
}

// repairTornParityDegraded repairs a torn parity twin in a group that
// also lost a block to the dead disk.
//
// If the dead block is the OTHER twin, every data page survives and the
// torn twin recomputes wholesale — after first unwinding (or declaring
// lost) any no-log steal whose working header the torn twin carries,
// since its D_old lives beyond the surviving redundancy unless demotion
// logged it.  If the dead block is a data page, recomputing the torn
// payload would need the dead page: the torn twin is invalidated when
// the other twin describes the on-disk group, and the group is declared
// lost when the torn twin was the only describing one.
func repairTornParityDegraded(s *core.Store, a *Analysis, g page.GroupID, twin int, headerOK bool, rep *Report) error {
	hdr, err := s.Arr.PeekParityMeta(g, twin)
	if err != nil {
		return err
	}
	if !headerOK {
		// The persisted header is foreign or stale (misdirected/lost
		// write): treat it as carrying no information.  Loser steals are
		// instead detected by their data tags below; the zero-value header
		// never matches the working-loser or otherDescribes tests.
		hdr = disk.Meta{State: disk.StateInvalid}
	}
	dead := s.DeadTwin(g)
	if dead >= 0 && s.Twins != nil {
		if !headerOK {
			// Whichever twin was the loser's working parity, the committed
			// one is corrupt or dead: an unresolved loser tag means D_old
			// is beyond the surviving redundancy.
			for _, q := range s.Arr.GroupPages(g) {
				_, qm, err := s.Arr.ReadData(q)
				if err != nil {
					if disk.IsCorrupt(err) {
						continue // a second corrupt block; recompute below fails loudly
					}
					return fmt.Errorf("recovery: repair corrupt twin of group %d: %w", g, err)
				}
				if !qm.ChainSet || a.Outcomes[qm.Txn] != OutcomeLoser || hasLoggedImage(a, qm.Txn, q) {
					continue
				}
				lost, err := loseGroup(s, g, []page.PageID{q})
				if err != nil {
					return err
				}
				rep.LostPages = append(rep.LostPages, lost...)
				return nil
			}
		}
		if hdr.State == disk.StateWorking && !a.Committed(hdr.Txn) {
			p := hdr.DirtyPage
			_, dMeta, err := s.Arr.ReadData(p)
			if err != nil {
				return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
			}
			if dMeta.Txn == hdr.Txn && !hasLoggedImage(a, hdr.Txn, p) {
				// The steal's data write landed, its committed twin died
				// with the disk, and no demotion logged D_old.  The dead
				// index's Q partner, if it survives, still describes the
				// pre-steal group: restore D_old from it and recompute
				// the torn twin over the restored data below.  Otherwise
				// the before-image is gone; loseGroup also heals the
				// tear (it rewrites every readable twin).
				undone := false
				if s.Arr.HasQ() && s.QTwinReadable(g, dead) {
					if dOld, rerr := s.ReconstructDataAny(g, p, dead); rerr == nil {
						if werr := s.Arr.WriteData(p, dOld, disk.Meta{}); werr != nil {
							return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, werr)
						}
						undone = true
					}
				}
				if !undone {
					lost, err := loseGroup(s, g, []page.PageID{p})
					if err != nil {
						return err
					}
					rep.LostPages = append(rep.LostPages, lost...)
					return nil
				}
			}
			// Untagged (the data write never landed) or rewound later
			// from the log: the on-disk data is (or will be made)
			// consistent, so recompute over it below.
		}
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if err := recomputeIndex(s, g, twin, meta); err != nil {
			return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
		}
		s.Twins.Promote(g, twin)
		return nil
	}
	if s.Twins == nil {
		// Single-parity group with a dead data page and a torn parity
		// block: one equation, two unknowns.
		lost, err := loseGroup(s, g, nil)
		if err != nil {
			return err
		}
		rep.LostPages = append(rep.LostPages, lost...)
		return nil
	}
	// A data page is dead and this twin is torn.  If the other twin
	// describes the on-disk group (Figure 7 says it is current), the torn
	// one was redundant: invalidate it.  Otherwise the dead page's value
	// survived only in the torn payload.
	other := 1 - twin
	om, err := s.Arr.ReadParityMeta(g, other)
	if err != nil {
		return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
	}
	otherDescribes := om.State == disk.StateCommitted &&
		(hdr.State != disk.StateCommitted || om.Timestamp > hdr.Timestamp ||
			(om.Timestamp == hdr.Timestamp && other < twin))
	if otherDescribes {
		zero := make(page.Buf, s.Arr.PageSize())
		if err := s.Arr.WriteParity(g, twin, zero, disk.Meta{State: disk.StateInvalid}); err != nil {
			return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
		}
		if err := s.InvalidateIndexAlive(g, twin); err != nil {
			return err
		}
		s.Twins.Promote(g, other)
		return nil
	}
	if s.Arr.HasQ() && s.QTwinReadable(g, twin) {
		// The torn twin describes the group and its Q partner survives:
		// the dead data page solves from the Q equation, and the torn P
		// payload recomputes from the solved values.  The header comes
		// from the torn block itself when it survived the fault, else
		// from the Q mirror; anything but a committed one (an in-flight
		// steal caught by the tear) is left to explicit loss.
		meta := hdr
		if !headerOK {
			if qm, qerr := s.Arr.ReadQMeta(g, twin); qerr == nil {
				meta = qm
			}
		}
		if meta.State == disk.StateCommitted {
			if vals, serr := s.SolveGroup(g, twin); serr == nil {
				raw := make([][]byte, len(vals))
				for i, v := range vals {
					raw[i] = v
				}
				pBuf := xorparity.Compute(s.Arr.PageSize(), raw...)
				if err := s.Arr.WriteParity(g, twin, pBuf, meta); err != nil {
					return fmt.Errorf("recovery: repair torn twin of group %d: %w", g, err)
				}
				s.Twins.Promote(g, twin)
				return nil
			}
		}
	}
	lost, err := loseGroup(s, g, nil)
	if err != nil {
		return err
	}
	rep.LostPages = append(rep.LostPages, lost...)
	return nil
}

// applyImage writes a logged page or record image back to the database.
// committedWrite selects the committed write path (REDO) versus the
// logged-undo path.
func applyImage(s *core.Store, r wal.Record, committedWrite bool) error {
	var data page.Buf
	if r.Slot == wal.NoSlot {
		data = page.Buf(r.Image).Clone()
		if len(data) != s.Arr.PageSize() {
			return fmt.Errorf("recovery: page image of %d bytes for %d-byte pages", len(data), s.Arr.PageSize())
		}
	} else {
		img, err := record.DecodeImage(r.Image)
		if err != nil {
			return err
		}
		cur, err := s.ReadPage(r.Page)
		if err != nil {
			return err
		}
		view, err := record.View(cur)
		if err != nil {
			return fmt.Errorf("recovery: page %d: %w", r.Page, err)
		}
		if err := view.Apply(int(r.Slot), img); err != nil {
			return err
		}
		data = cur
	}
	if committedWrite {
		return s.WriteCommitted(r.Page, data, nil)
	}
	return s.WriteLogged(r.Page, data, nil)
}

// BeforeImageFunc supplies the in-memory before-image of the page that
// dirtied a group, for the media-recovery case where the group's
// committed parity twin is lost while the owning transaction is still
// active.  Returning nil means the image is unavailable.
type BeforeImageFunc func(g page.GroupID, e dirtyset.Entry) page.Buf

// RecoverMedia replaces failed disk d and reconstructs every lost block.
// The store's volatile state (Dirty_Set, bitmap) must be intact — media
// recovery is an online operation, unlike crash recovery.
func RecoverMedia(s *core.Store, d int, before BeforeImageFunc) error {
	lost, err := RecoverMediaMulti(s, []int{d}, before)
	if err != nil {
		return err
	}
	if len(lost) > 0 {
		// A single-disk failure never exceeds single-failure redundancy.
		return fmt.Errorf("recovery: single-disk rebuild reported lost groups %v", lost)
	}
	return nil
}

// RecoverMediaMulti replaces several simultaneously failed disks and
// reconstructs every lost block, exploiting the extra redundancy of twin
// parity where it helps.  A group that lost one block recovers as usual.
// A group that lost two blocks recovers when the survivors determine its
// state:
//
//   - both parity twins lost — recomputed from the data pages (the
//     committed twin of a dirty group additionally needs the dirty
//     page's retained before-image);
//   - a data page plus the twin that does NOT describe the on-disk data
//     (the obsolete twin of a clean group; the committed twin of a dirty
//     group, via the before-image) — the data page rebuilds from the
//     surviving twin, then the lost twin is recomputed.
//
// Combinations that genuinely exceed the redundancy (two data pages; a
// data page plus the only twin describing the on-disk state) cannot be
// rebuilt: those groups' lost data pages stay zeroed, their parity is
// recomputed so the array is internally consistent again, and the group
// is reported in the returned slice — the data-loss event a DBA would
// answer with an archive restore.  With a single failed disk the slice
// is always empty.
func RecoverMediaMulti(s *core.Store, ds []int, before BeforeImageFunc) ([]page.GroupID, error) {
	failed := make(map[int]bool, len(ds))
	for _, d := range ds {
		if err := s.Arr.RepairDisk(d); err != nil {
			return nil, err
		}
		failed[d] = true
	}
	var lost []page.GroupID
	for g := 0; g < s.Arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		var lostData []page.PageID
		for _, p := range s.Arr.GroupPages(gid) {
			if failed[s.Arr.DataLoc(p).Disk] {
				lostData = append(lostData, p)
			}
		}
		var lostTwins []int
		for twin := 0; twin < s.Arr.ParityPages(); twin++ {
			if failed[s.Arr.ParityLoc(gid, twin).Disk] {
				lostTwins = append(lostTwins, twin)
			}
		}
		var lostQ []int
		for twin := 0; twin < s.Arr.QParityPages(); twin++ {
			if failed[s.Arr.QLoc(gid, twin).Disk] {
				lostQ = append(lostQ, twin)
			}
		}
		ok, err := rebuildGroup(s, gid, lostData, lostTwins, lostQ, before)
		if err != nil {
			return lost, err
		}
		if !ok {
			lost = append(lost, gid)
			if err := resetLostGroupParity(s, gid); err != nil {
				return lost, err
			}
		}
	}
	return lost, nil
}

// resetLostGroupParity recomputes a data-loss group's parity over its
// (partially zeroed) data so that subsequent operation and verification
// see a consistent, if lossy, group.
func resetLostGroupParity(s *core.Store, g page.GroupID) error {
	for twin := 0; twin < s.Arr.ParityPages(); twin++ {
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if twin != 0 {
			meta = disk.Meta{State: disk.StateObsolete}
		}
		// Unconditional writes: media recovery has already swapped the
		// dead drives in, even though the store may still flag them down.
		if s.Arr.HasQ() && twin < s.Arr.QParityPages() {
			if err := s.Arr.RecomputeQ(g, twin, meta); err != nil {
				return fmt.Errorf("recovery: reset lost group %d: %w", g, err)
			}
		}
		if err := s.Arr.RecomputeParity(g, twin, meta); err != nil {
			return fmt.Errorf("recovery: reset lost group %d: %w", g, err)
		}
	}
	if s.Twins != nil {
		s.Twins.Promote(g, 0)
	}
	if s.Dirty != nil {
		s.Dirty.Clean(g)
	}
	return nil
}

// rebuildGroup reconstructs one group's lost blocks.  It returns false
// when the loss exceeds the group's redundancy.
func rebuildGroup(s *core.Store, g page.GroupID, lostData []page.PageID, lostTwins, lostQ []int, before BeforeImageFunc) (bool, error) {
	if len(lostData) == 0 && len(lostTwins) == 0 && len(lostQ) == 0 {
		return true, nil
	}
	var e dirtyset.Entry
	dirty := false
	if s.Dirty != nil {
		e, dirty = s.Dirty.Lookup(g)
	}
	// The index that tracks the *on-disk* data is the working twin of a
	// dirty group, the current twin otherwise.
	onDiskTwin := 0
	if s.Twins != nil {
		if dirty {
			onDiskTwin = e.WorkingTwin
		} else {
			onDiskTwin = s.Twins.Current(g)
		}
	}
	contains := func(set []int, t int) bool {
		for _, x := range set {
			if x == t {
				return true
			}
		}
		return false
	}
	lostOnDisk := contains(lostTwins, onDiskTwin)
	lostOnDiskQ := contains(lostQ, onDiskTwin)

	switch {
	case len(lostData) > 2:
		return false, nil
	case len(lostData) == 2:
		// Two data pages are two erasures: only the on-disk index's P
		// and Q equations together determine them.
		if !s.Arr.HasQ() || lostOnDisk || lostOnDiskQ {
			return false, nil
		}
		if err := rebuildTwoDataFromPQ(s, g, lostData[0], lostData[1], onDiskTwin, dirty, e); err != nil {
			return false, err
		}
	case len(lostData) == 1:
		p := lostData[0]
		switch {
		case !lostOnDisk:
			if err := rebuildDataFromTwin(s, g, p, onDiskTwin, dirty, e); err != nil {
				return false, err
			}
		case s.Arr.HasQ() && !lostOnDiskQ:
			// The on-disk P twin died with the page, but its Q partner
			// describes the same state (lockstep) and solves p alone.
			if err := rebuildDataFromQTwin(s, g, p, onDiskTwin, dirty, e); err != nil {
				return false, err
			}
		case dirty && p != e.Page && before != nil && before(g, e) != nil:
			// The on-disk-view twin is gone, but the committed twin plus
			// the dirty page's before-image still determine p:
			// p = committed ⊕ Σ(other data, dirty page at its before-image).
			if err := rebuildDataFromCommitted(s, g, p, 1-onDiskTwin, e, before); err != nil {
				return false, err
			}
		default:
			// The lost page's covering redundancy is gone too.
			return false, nil
		}
	}

	// With the data whole again, recompute every lost twin.  For a dirty
	// group the working twin goes first: the committed twin's rebuild
	// reads the working twin's timestamp to order below it (Figure 7).
	sort.Slice(lostTwins, func(i, j int) bool {
		return dirty && lostTwins[i] == e.WorkingTwin && lostTwins[j] != e.WorkingTwin
	})
	for _, twin := range lostTwins {
		if err := rebuildParityTwin(s, g, twin, dirty, e, before); err != nil {
			return false, err
		}
	}
	// Lost Q pages rebuild last, mirroring their (now whole) P partners.
	for _, twin := range lostQ {
		if err := rebuildQTwin(s, g, twin, dirty, e, before); err != nil {
			return false, err
		}
	}
	return true, nil
}

// rebuildTwoDataFromPQ reconstructs two lost data pages of one group
// from the given index's P and Q equations plus the surviving members.
func rebuildTwoDataFromPQ(s *core.Store, g page.GroupID, pa, pb page.PageID, twin int, dirty bool, e dirtyset.Entry) error {
	pBuf, _, err := s.Arr.ReadParity(g, twin)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
	}
	qBuf, _, err := s.Arr.ReadQ(g, twin)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
	}
	pages := s.Arr.GroupPages(g)
	raw := make([][]byte, len(pages))
	i, j := -1, -1
	for k, pg := range pages {
		switch pg {
		case pa:
			i = k
		case pb:
			j = k
		default:
			b, _, err := s.Arr.ReadData(pg)
			if err != nil {
				return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
			}
			raw[k] = b
		}
	}
	if i > j {
		i, j = j, i
		pa, pb = pb, pa
	}
	di, dj := erasure.ReconstructTwo(pBuf, qBuf, raw, i, j)
	for _, rec := range []struct {
		p page.PageID
		b []byte
	}{{pa, di}, {pb, dj}} {
		meta := disk.Meta{}
		if dirty && rec.p == e.Page {
			meta.Txn = e.Txn
		}
		if err := s.Arr.WriteData(rec.p, rec.b, meta); err != nil {
			return fmt.Errorf("recovery: media rebuild page %d: %w", rec.p, err)
		}
	}
	return nil
}

// rebuildDataFromQTwin reconstructs data page p from the given index's Q
// page (its P partner is lost) and the surviving members.
func rebuildDataFromQTwin(s *core.Store, g page.GroupID, p page.PageID, twin int, dirty bool, e dirtyset.Entry) error {
	q, _, err := s.Arr.ReadQ(g, twin)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
	}
	pages := s.Arr.GroupPages(g)
	raw := make([][]byte, len(pages))
	idx := -1
	for i, pg := range pages {
		if pg == p {
			idx = i
			continue
		}
		b, _, err := s.Arr.ReadData(pg)
		if err != nil {
			return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
		}
		raw[i] = b
	}
	rebuilt := erasure.ReconstructOneQ(q, raw, idx)
	meta := disk.Meta{}
	if dirty && p == e.Page {
		meta.Txn = e.Txn
	}
	if err := s.Arr.WriteData(p, rebuilt, meta); err != nil {
		return fmt.Errorf("recovery: media rebuild page %d: %w", p, err)
	}
	return nil
}

// rebuildQTwin recomputes one lost Q page after the group's data and P
// twins are whole again, under the P partner's header — the lockstep
// invariant.  The committed partner of a dirty group describes the
// before-image state, so its Q needs the same retained image the P
// rebuild does.
func rebuildQTwin(s *core.Store, g page.GroupID, twin int, dirty bool, e dirtyset.Entry, before BeforeImageFunc) error {
	pm, err := s.Arr.ReadParityMeta(g, twin)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild Q of group %d: %w", g, err)
	}
	pages := s.Arr.GroupPages(g)
	raw := make([][]byte, len(pages))
	for i, pg := range pages {
		b, _, err := s.Arr.ReadData(pg)
		if err != nil {
			return fmt.Errorf("recovery: media rebuild Q of group %d: %w", g, err)
		}
		raw[i] = b
	}
	if dirty && s.Twins != nil && twin != e.WorkingTwin {
		var img page.Buf
		if before != nil {
			img = before(g, e)
		}
		if img == nil {
			return fmt.Errorf("recovery: group %d: committed Q twin lost while dirty and no before-image available", g)
		}
		for i, pg := range pages {
			if pg == e.Page {
				raw[i] = img
			}
		}
	}
	q := erasure.ComputeQ(s.Arr.PageSize(), raw...)
	if err := s.Arr.WriteQ(g, twin, q, pm); err != nil {
		return fmt.Errorf("recovery: media rebuild Q of group %d: %w", g, err)
	}
	return nil
}

// rebuildDataFromTwin reconstructs data page p from the given twin (which
// describes the on-disk data) and the surviving members.
func rebuildDataFromTwin(s *core.Store, g page.GroupID, p page.PageID, twin int, dirty bool, e dirtyset.Entry) error {
	parity, _, err := s.Arr.ReadParity(g, twin)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
	}
	survivors := [][]byte{parity}
	for _, q := range s.Arr.GroupPages(g) {
		if q == p {
			continue
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
		}
		survivors = append(survivors, b)
	}
	rebuilt := xorparity.Reconstruct(s.Arr.PageSize(), survivors...)
	meta := disk.Meta{}
	if dirty && p == e.Page {
		// Restore the crash-undo tag on the dirty page.
		meta.Txn = e.Txn
	}
	if err := s.Arr.WriteData(p, rebuilt, meta); err != nil {
		return fmt.Errorf("recovery: media rebuild page %d: %w", p, err)
	}
	return nil
}

// rebuildDataFromCommitted reconstructs a non-dirty data page of a dirty
// group from the committed twin, substituting the dirty page's retained
// before-image for its on-disk contents.
func rebuildDataFromCommitted(s *core.Store, g page.GroupID, p page.PageID, committedTwin int, e dirtyset.Entry, before BeforeImageFunc) error {
	img := before(g, e)
	if img == nil {
		return fmt.Errorf("recovery: group %d: need the dirty page's before-image to rebuild page %d; unavailable", g, p)
	}
	parity, _, err := s.Arr.ReadParity(g, committedTwin)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
	}
	survivors := [][]byte{parity}
	for _, q := range s.Arr.GroupPages(g) {
		if q == p {
			continue
		}
		if q == e.Page {
			survivors = append(survivors, img)
			continue
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
		}
		survivors = append(survivors, b)
	}
	rebuilt := xorparity.Reconstruct(s.Arr.PageSize(), survivors...)
	if err := s.Arr.WriteData(p, rebuilt, disk.Meta{}); err != nil {
		return fmt.Errorf("recovery: media rebuild page %d: %w", p, err)
	}
	return nil
}

// rebuildParityTwin recomputes one lost parity twin of group g.
func rebuildParityTwin(s *core.Store, g page.GroupID, twin int, dirty bool, e dirtyset.Entry, before BeforeImageFunc) error {
	ps := s.Arr.PageSize()
	blocks, err := s.Arr.ReadGroup(g)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild parity of group %d: %w", g, err)
	}
	raw := make([][]byte, len(blocks))
	for i, b := range blocks {
		raw[i] = b
	}
	onDiskParity := xorparity.Compute(ps, raw...)

	// Single-parity array, or any twin of a clean group: parity of the
	// on-disk data.
	if s.Twins == nil {
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		return s.Arr.WriteParity(g, twin, onDiskParity, meta)
	}
	if !dirty {
		var meta disk.Meta
		if twin == s.Twins.Current(g) {
			meta = disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		} else {
			meta = disk.Meta{State: disk.StateObsolete, Timestamp: 0}
		}
		return s.Arr.WriteParity(g, twin, onDiskParity, meta)
	}

	if twin == e.WorkingTwin {
		// The working twin is by definition the parity of the on-disk
		// data of a dirty group.
		meta := disk.Meta{State: disk.StateWorking, Timestamp: s.TM.NextTimestamp(), Txn: e.Txn, DirtyPage: e.Page}
		return s.Arr.WriteParity(g, twin, onDiskParity, meta)
	}

	// The committed twin of a dirty group: parity of the on-disk data
	// with the dirty page at its before-image.
	img := before(g, e)
	if img == nil {
		return fmt.Errorf("recovery: group %d: committed parity twin lost while dirty and no before-image available", g)
	}
	dNew, _, err := s.Arr.ReadData(e.Page)
	if err != nil {
		return fmt.Errorf("recovery: media rebuild group %d: %w", g, err)
	}
	committedParity := xorparity.Xor(onDiskParity, dNew)
	xorparity.XorInto(committedParity, img)
	// Keep the Figure 7 ordering: the rebuilt committed twin must compare
	// BELOW the surviving working twin.
	wMeta, err := s.Arr.ReadParityMeta(g, e.WorkingTwin)
	if err != nil {
		return err
	}
	ts := wMeta.Timestamp
	if ts > 0 {
		ts--
	}
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: ts}
	return s.Arr.WriteParity(g, twin, committedParity, meta)
}
