package erasure_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/erasure"
	"repro/internal/xorparity"
)

// TestFieldAxioms spot-checks the ring structure the reconstruction
// algebra relies on: commutativity, associativity and distributivity
// over XOR addition.
func TestFieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 10000; n++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if erasure.Mul(a, b) != erasure.Mul(b, a) {
			t.Fatalf("ab != ba for %#x %#x", a, b)
		}
		if erasure.Mul(erasure.Mul(a, b), c) != erasure.Mul(a, erasure.Mul(b, c)) {
			t.Fatalf("(ab)c != a(bc) for %#x %#x %#x", a, b, c)
		}
		if erasure.Mul(a, b^c) != erasure.Mul(a, b)^erasure.Mul(a, c) {
			t.Fatalf("a(b+c) != ab+ac for %#x %#x %#x", a, b, c)
		}
	}
}

// randStripe builds k random data blocks of the given size.
func randStripe(rng *rand.Rand, k, size int) [][]byte {
	blocks := make([][]byte, k)
	for i := range blocks {
		blocks[i] = make([]byte, size)
		rng.Read(blocks[i])
	}
	return blocks
}

// TestXorPathByteIdentical pins the satellite contract: the P equation of
// the erasure code is byte-for-byte the XOR parity the engine has always
// computed, and the xorparity facade returns identical results through
// every entry point.
func TestXorPathByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(12)
		size := 16 + rng.Intn(64)
		blocks := randStripe(rng, k, size)
		plain := make([]byte, size)
		for _, b := range blocks {
			for i := range plain {
				plain[i] ^= b[i]
			}
		}
		if got := erasure.ComputeP(size, blocks...); !bytes.Equal(got, plain) {
			t.Fatalf("ComputeP diverges from plain XOR")
		}
		if got := xorparity.Compute(size, blocks...); !bytes.Equal(got, plain) {
			t.Fatalf("xorparity.Compute diverges from plain XOR")
		}
		if !xorparity.Verify(plain, blocks...) {
			t.Fatalf("xorparity.Verify rejects its own parity")
		}
		dNew := make([]byte, size)
		rng.Read(dNew)
		sw := xorparity.SmallWrite(plain, blocks[0], dNew)
		want := make([]byte, size)
		for i := range want {
			want[i] = plain[i] ^ blocks[0][i] ^ dNew[i]
		}
		if !bytes.Equal(sw, want) {
			t.Fatalf("xorparity.SmallWrite diverges from plain XOR")
		}
	}
}

// TestQSmallWriteMatchesRecompute checks the incremental Q update against
// a full recomputation for every group index.
func TestQSmallWriteMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(10)
		size := 32
		blocks := randStripe(rng, k, size)
		q := erasure.ComputeQ(size, blocks...)
		idx := rng.Intn(k)
		dNew := make([]byte, size)
		rng.Read(dNew)
		got := erasure.QSmallWrite(q, blocks[idx], dNew, idx)
		blocks[idx] = dNew
		want := erasure.ComputeQ(size, blocks...)
		if !bytes.Equal(got, want) {
			t.Fatalf("erasure.QSmallWrite(idx=%d, k=%d) diverges from recompute", idx, k)
		}
		if !erasure.VerifyQ(got, blocks...) {
			t.Fatalf("VerifyQ rejects recomputed Q")
		}
	}
}

// TestAnyTwoErasures fuzzes the central claim: for random stripes, ANY
// two missing data blocks are recovered exactly from P and Q, and any
// single missing block is recovered from Q alone.
func TestAnyTwoErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(14)
		size := 16 + rng.Intn(48)
		blocks := randStripe(rng, k, size)
		p := erasure.ComputeP(size, blocks...)
		q := erasure.ComputeQ(size, blocks...)
		i := rng.Intn(k)
		j := rng.Intn(k)
		for j == i {
			j = rng.Intn(k)
		}
		holed := make([][]byte, k)
		copy(holed, blocks)
		holed[i], holed[j] = nil, nil
		di, dj := erasure.ReconstructTwo(p, q, holed, i, j)
		if !bytes.Equal(di, blocks[i]) || !bytes.Equal(dj, blocks[j]) {
			t.Fatalf("two-erasure recovery wrong for (i=%d, j=%d, k=%d)", i, j, k)
		}
		holed[j] = blocks[j]
		if got := erasure.ReconstructOneQ(q, holed, i); !bytes.Equal(got, blocks[i]) {
			t.Fatalf("one-erasure-from-Q recovery wrong for (i=%d, k=%d)", i, k)
		}
	}
}

// TestAllErasurePairsExhaustive walks every (i, j) pair of one stripe so
// no coefficient pair is left to sampling luck.
func TestAllErasurePairsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k, size = 12, 32
	blocks := randStripe(rng, k, size)
	p := erasure.ComputeP(size, blocks...)
	q := erasure.ComputeQ(size, blocks...)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			holed := make([][]byte, k)
			copy(holed, blocks)
			holed[i], holed[j] = nil, nil
			di, dj := erasure.ReconstructTwo(p, q, holed, i, j)
			if !bytes.Equal(di, blocks[i]) || !bytes.Equal(dj, blocks[j]) {
				t.Fatalf("pair (%d,%d) not recovered", i, j)
			}
		}
	}
}

// FuzzTwoErasure is the CI smoke fuzz target: derive a stripe from the
// fuzzed bytes, knock out two blocks, demand exact recovery.
func FuzzTwoErasure(f *testing.F) {
	f.Add([]byte("seed corpus stripe material, long enough to slice"), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, a, b uint8) {
		const size = 8
		k := 2 + int(a%14)
		if len(raw) < k*size {
			return
		}
		blocks := make([][]byte, k)
		for i := range blocks {
			blocks[i] = raw[i*size : (i+1)*size]
		}
		i := int(a) % k
		j := int(b) % k
		if i == j {
			j = (j + 1) % k
		}
		p := erasure.ComputeP(size, blocks...)
		q := erasure.ComputeQ(size, blocks...)
		holed := make([][]byte, k)
		copy(holed, blocks)
		holed[i], holed[j] = nil, nil
		di, dj := erasure.ReconstructTwo(p, q, holed, i, j)
		if !bytes.Equal(di, blocks[i]) || !bytes.Equal(dj, blocks[j]) {
			t.Fatalf("two-erasure recovery wrong for (i=%d, j=%d, k=%d)", i, j, k)
		}
	})
}
