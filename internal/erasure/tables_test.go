package erasure

import "testing"

// TestTableRoundTrips checks the generator tables: every non-zero field
// element is some power of g, log inverts exp, and every element has a
// working multiplicative inverse.
func TestTableRoundTrips(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		e := Exp(i)
		if e == 0 {
			t.Fatalf("g^%d = 0", i)
		}
		if seen[e] {
			t.Fatalf("g^%d repeats element %#x before the cycle closes", i, e)
		}
		seen[e] = true
		if logTable[e] != i {
			t.Fatalf("log(g^%d) = %d", i, logTable[e])
		}
	}
	if Exp(255) != Exp(0) {
		t.Fatalf("generator cycle is not 255")
	}
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %#x for a = %#x", got, a)
		}
		if got := Div(byte(a), byte(a)); got != 1 {
			t.Fatalf("a/a = %#x for a = %#x", got, a)
		}
	}
}
