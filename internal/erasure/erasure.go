// Package erasure is the erasure-coding algebra behind the array's
// redundancy: the XOR parity equation the paper builds on (P), plus an
// optional second Reed-Solomon equation over GF(2^8) (Q) in the style of
// RAID-6.
//
// A parity group with data pages D_0 … D_{k-1} maintains
//
//	P = D_0 ⊕ D_1 ⊕ … ⊕ D_{k-1}
//	Q = g⁰·D_0 ⊕ g¹·D_1 ⊕ … ⊕ g^{k-1}·D_{k-1}
//
// where g = 2 generates the multiplicative group of GF(2^8) with the
// primitive polynomial x⁸+x⁴+x³+x²+1 (0x11d) and · is field
// multiplication applied byte-wise.  P alone recovers any single missing
// block; P and Q together recover any two.  Because addition in GF(2^8)
// is XOR, the P equation here is bit-identical to package xorparity — the
// single-parity array is exactly the m = 1 special case of this code, and
// xorparity now delegates to this package.
//
// The algebra the engine uses:
//
//   - small write: P' = P ⊕ D_old ⊕ D_new and Q' = Q ⊕ g^i·(D_old ⊕ D_new)
//     — neither update needs any other member of the group;
//   - one data block i missing, P lost: D_i = g^{-i}·(Q ⊕ Σ_{k≠i} g^k·D_k);
//   - two data blocks i < j missing: with the partial sums
//     S_p = P ⊕ Σ_{k∉{i,j}} D_k and S_q = Q ⊕ Σ_{k∉{i,j}} g^k·D_k,
//     D_i = (g^j·S_p ⊕ S_q) / (g^i ⊕ g^j) and D_j = S_p ⊕ D_i.
//
// All functions operate on equal-length byte slices; length mismatches
// panic, as in xorparity, because they indicate a storage-layer bug.
package erasure

import "fmt"

// Generator polynomial x⁸+x⁴+x³+x²+1 and generator element of GF(2^8).
const (
	poly      = 0x11d
	generator = 2
)

// exp and log are the generator power tables: exp[i] = g^i (doubled so
// products of logs index without a mod), log[exp[i]] = i for i in
// [0, 255).
var (
	expTable [510]byte
	logTable [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
}

// Exp returns g^i for i ≥ 0 — the Q-equation coefficient of the data
// block at group index i.
func Exp(i int) byte {
	return expTable[i%255]
}

// Mul returns the GF(2^8) product a·b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Inv returns the multiplicative inverse of a.  It panics on 0, which has
// no inverse; callers divide only by sums of distinct coefficients, which
// are never zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero")
	}
	return expTable[255-logTable[a]]
}

// Div returns a / b in GF(2^8).  It panics when b is 0.
func Div(a, b byte) byte {
	return Mul(a, Inv(b))
}

// check panics on a block-length mismatch.
func check(a, b []byte) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("erasure: length mismatch %d != %d", len(a), len(b)))
	}
}

// AddInto computes dst ^= src in place — field addition, identical to
// xorparity.XorInto.
func AddInto(dst, src []byte) {
	check(dst, src)
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// MulAddInto computes dst ^= c·src in place, the fused step every Q
// computation is built from.  c = 1 degenerates to AddInto; c = 0 is a
// no-op.
func MulAddInto(dst, src []byte, c byte) {
	check(dst, src)
	switch c {
	case 0:
		return
	case 1:
		for i := range dst {
			dst[i] ^= src[i]
		}
	default:
		cl := logTable[c]
		for i := range dst {
			if s := src[i]; s != 0 {
				dst[i] ^= expTable[cl+logTable[s]]
			}
		}
	}
}

// MulInto scales dst by c in place.
func MulInto(dst []byte, c byte) {
	switch c {
	case 1:
		return
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	default:
		cl := logTable[c]
		for i := range dst {
			if d := dst[i]; d != 0 {
				dst[i] = expTable[cl+logTable[d]]
			} else {
				dst[i] = 0
			}
		}
	}
}

// ComputeP returns the P parity (plain XOR) of the given blocks.  Nil
// blocks count as zero pages, so callers can pass a group with holes.
func ComputeP(size int, blocks ...[]byte) []byte {
	out := make([]byte, size)
	for _, b := range blocks {
		if b != nil {
			AddInto(out, b)
		}
	}
	return out
}

// ComputeQ returns the Q redundancy Σ g^i·D_i of the given blocks, where
// i is each block's position in the argument list (its index within the
// parity group).  Nil blocks count as zero pages.
func ComputeQ(size int, blocks ...[]byte) []byte {
	out := make([]byte, size)
	for i, b := range blocks {
		if b != nil {
			MulAddInto(out, b, Exp(i))
		}
	}
	return out
}

// QSmallWrite returns the updated Q for a small write of dataNew over
// dataOld at group index idx:
//
//	Q' = Q ⊕ g^idx·(D_old ⊕ D_new)
//
// the Q-side counterpart of xorparity.SmallWrite, needing no other group
// member.
func QSmallWrite(qOld, dataOld, dataNew []byte, idx int) []byte {
	check(qOld, dataOld)
	check(qOld, dataNew)
	out := make([]byte, len(qOld))
	copy(out, qOld)
	delta := make([]byte, len(dataOld))
	for i := range delta {
		delta[i] = dataOld[i] ^ dataNew[i]
	}
	MulAddInto(out, delta, Exp(idx))
	return out
}

// ReconstructOneQ recovers the single missing data block at group index
// `missing` from Q and the surviving data blocks — the path taken when
// both a data block and the P parity are unavailable.  blocks holds the
// group's data pages in index order with nil at (at least) the missing
// slot; non-missing entries must all be present.
func ReconstructOneQ(q []byte, blocks [][]byte, missing int) []byte {
	acc := make([]byte, len(q))
	copy(acc, q)
	for i, b := range blocks {
		if i == missing {
			continue
		}
		if b == nil {
			panic("erasure: ReconstructOneQ needs every non-missing block")
		}
		MulAddInto(acc, b, Exp(i))
	}
	MulInto(acc, Inv(Exp(missing)))
	return acc
}

// ReconstructTwo recovers the two missing data blocks at group indexes i
// and j (i ≠ j) from P, Q and the surviving data blocks.  blocks holds
// the group's data pages in index order with nil at the missing slots.
// The returned slices are the recovered D_i and D_j.
func ReconstructTwo(p, q []byte, blocks [][]byte, i, j int) (di, dj []byte) {
	check(p, q)
	if i == j {
		panic("erasure: ReconstructTwo needs two distinct indexes")
	}
	sp := make([]byte, len(p))
	copy(sp, p)
	sq := make([]byte, len(q))
	copy(sq, q)
	for k, b := range blocks {
		if k == i || k == j {
			continue
		}
		if b == nil {
			panic("erasure: ReconstructTwo needs every non-missing block")
		}
		AddInto(sp, b)
		MulAddInto(sq, b, Exp(k))
	}
	// g^j·S_p ⊕ S_q = (g^i ⊕ g^j)·D_i.
	di = make([]byte, len(p))
	copy(di, sp)
	MulInto(di, Exp(j))
	AddInto(di, sq)
	MulInto(di, Inv(Exp(i)^Exp(j)))
	dj = make([]byte, len(p))
	copy(dj, sp)
	AddInto(dj, di)
	return di, dj
}

// VerifyQ reports whether q equals the Q redundancy of the given data
// blocks in index order.
func VerifyQ(q []byte, blocks ...[]byte) bool {
	acc := make([]byte, len(q))
	for i, b := range blocks {
		if b != nil {
			MulAddInto(acc, b, Exp(i))
		}
	}
	for i := range acc {
		if acc[i] != q[i] {
			return false
		}
	}
	return true
}
