package xorparity

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(r *rand.Rand, size int) []byte {
	b := make([]byte, size)
	r.Read(b)
	return b
}

func TestSmallWriteMatchesRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const size, n = 256, 5
	group := make([][]byte, n)
	for i := range group {
		group[i] = randBlock(r, size)
	}
	parity := Compute(size, group...)
	for step := 0; step < 50; step++ {
		i := r.Intn(n)
		dataNew := randBlock(r, size)
		parity = SmallWrite(parity, group[i], dataNew)
		group[i] = dataNew
		if !Verify(parity, group...) {
			t.Fatalf("step %d: small-write parity diverged from full recompute", step)
		}
	}
}

func TestUndoTwinRecoversBeforeImage(t *testing.T) {
	// Figure 6: P is the committed parity, P' the working parity after one
	// data page changed.  UndoTwin must return the old contents of that page.
	r := rand.New(rand.NewSource(2))
	const size, n = 128, 4
	group := make([][]byte, n)
	for i := range group {
		group[i] = randBlock(r, size)
	}
	committed := Compute(size, group...)
	dOld := group[2]
	dNew := randBlock(r, size)
	working := SmallWrite(committed, dOld, dNew)
	got := UndoTwin(committed, working, dNew)
	if !bytes.Equal(got, dOld) {
		t.Fatalf("UndoTwin did not recover the before-image")
	}
	// The operation is symmetric in the twin order.
	got = UndoTwin(working, committed, dNew)
	if !bytes.Equal(got, dOld) {
		t.Fatalf("UndoTwin must be symmetric in its parity arguments")
	}
}

func TestReconstructLostBlock(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const size, n = 64, 7
	group := make([][]byte, n)
	for i := range group {
		group[i] = randBlock(r, size)
	}
	parity := Compute(size, group...)
	for lost := 0; lost < n; lost++ {
		survivors := [][]byte{parity}
		for i, b := range group {
			if i != lost {
				survivors = append(survivors, b)
			}
		}
		if got := Reconstruct(size, survivors...); !bytes.Equal(got, group[lost]) {
			t.Fatalf("failed to reconstruct data block %d", lost)
		}
	}
	// Reconstructing the parity block itself from all data blocks.
	if got := Reconstruct(size, group...); !bytes.Equal(got, parity) {
		t.Fatalf("failed to reconstruct the parity block")
	}
}

func TestXorProperties(t *testing.T) {
	type blocks struct{ A, B, C [32]byte }
	// Associativity/commutativity/self-inverse over fixed-size arrays.
	selfInverse := func(in blocks) bool {
		x := Xor(in.A[:], in.B[:])
		x = Xor(x, in.B[:])
		return bytes.Equal(x, in.A[:])
	}
	commutative := func(in blocks) bool {
		return bytes.Equal(Xor(in.A[:], in.B[:]), Xor(in.B[:], in.A[:]))
	}
	associative := func(in blocks) bool {
		l := Xor(Xor(in.A[:], in.B[:]), in.C[:])
		r := Xor(in.A[:], Xor(in.B[:], in.C[:]))
		return bytes.Equal(l, r)
	}
	for name, f := range map[string]func(blocks) bool{
		"selfInverse": selfInverse,
		"commutative": commutative,
		"associative": associative,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestQuickSmallWriteUndoRoundTrip(t *testing.T) {
	// Property: for any group state and any overwrite, the twin undo
	// identity (P ⊕ P') ⊕ D_new == D_old holds.
	f := func(a, b, c, dOld, dNew [48]byte) bool {
		committed := Compute(48, a[:], b[:], c[:], dOld[:])
		working := SmallWrite(committed, dOld[:], dNew[:])
		return bytes.Equal(UndoTwin(committed, working, dNew[:]), dOld[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on length mismatch")
		}
	}()
	XorInto(make([]byte, 4), make([]byte, 5))
}

func TestComputeEmpty(t *testing.T) {
	p := Compute(16)
	if !bytes.Equal(p, make([]byte, 16)) {
		t.Fatalf("parity of no blocks must be zero")
	}
}
