// Package xorparity implements the exclusive-or block algebra that
// underlies every redundancy and recovery operation in the repository.
//
// The paper relies on three algebraic facts about XOR parity:
//
//  1. Small-write parity update (Section 3.1): for a write of D_new over
//     D_old in a group with parity P, the new parity is
//     P_new = P ⊕ D_old ⊕ D_new.
//  2. Transaction undo via twin parity (Figure 6):
//     D_old = (P ⊕ P′) ⊕ D_new, where P and P′ are the twin parity pages
//     and exactly one data page of the group differs between them.
//  3. Media reconstruction: a lost block equals the XOR of all surviving
//     blocks of its group (data blocks and the valid parity block).
//
// XOR parity is the m = 1 special case of the erasure code in
// internal/erasure: addition in GF(2^8) is XOR, so this package is a thin
// facade over erasure's P equation and its behavior is bit-identical to
// the pre-erasure implementation.  The second (Q) equation lives entirely
// in internal/erasure and only arrays configured with QParity use it.
//
// All functions operate on equal-length byte slices and either mutate a
// destination in place or allocate a fresh result, as documented.
package xorparity

import "repro/internal/erasure"

// XorInto computes dst ^= src in place.  It panics if the lengths differ,
// because mismatched block sizes indicate a programming error in the
// storage layer rather than a recoverable runtime condition.
func XorInto(dst, src []byte) {
	erasure.AddInto(dst, src)
}

// Xor returns a ^ b as a freshly allocated slice.
func Xor(a, b []byte) []byte {
	out := make([]byte, len(a))
	copy(out, a)
	erasure.AddInto(out, b)
	return out
}

// Compute returns the parity of an arbitrary set of equal-length blocks.
// With no blocks it returns a zeroed slice of length size.
func Compute(size int, blocks ...[]byte) []byte {
	return erasure.ComputeP(size, blocks...)
}

// SmallWrite returns the updated parity for a small (single page) write:
// P_new = P_old ⊕ D_old ⊕ D_new.  This is the read-modify-write protocol
// described in Section 3.1 for RAID with rotated parity and used verbatim
// by parity striping.
func SmallWrite(parityOld, dataOld, dataNew []byte) []byte {
	out := Xor(parityOld, dataOld)
	XorInto(out, dataNew)
	return out
}

// UndoTwin recovers the before-image of the single data page that differs
// between the two twin parity pages:
//
//	D_old = (P ⊕ P′) ⊕ D_new
//
// (Figure 6).  It is the caller's responsibility to guarantee that exactly
// one data page of the group changed between the states captured by p and
// pPrime; the dirty-group bookkeeping in internal/dirtyset enforces this.
func UndoTwin(p, pPrime, dataNew []byte) []byte {
	out := Xor(p, pPrime)
	XorInto(out, dataNew)
	return out
}

// Reconstruct recovers a lost block as the XOR of the surviving blocks of
// its parity group (the surviving data blocks plus the valid parity
// block).
func Reconstruct(size int, survivors ...[]byte) []byte {
	return Compute(size, survivors...)
}

// Verify reports whether parity equals the XOR of the given data blocks.
func Verify(parity []byte, blocks ...[]byte) bool {
	acc := erasure.ComputeP(len(parity), blocks...)
	for i := range acc {
		if acc[i] != parity[i] {
			return false
		}
	}
	return true
}
